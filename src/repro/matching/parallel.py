"""Parallel matching by partitioning starting data vertices (Section 5.2).

After the query tree is written, every starting data vertex can be processed
independently — candidate-region exploration, matching-order determination
and subgraph search (Algorithm 1, lines 9–15).  The paper distributes small
dynamic chunks of starting vertices over NUMA-pinned threads.

This reproduction distributes the same dynamic chunks over a **persistent**
thread pool: the worker threads are started lazily on the first match and
then reused by every later query (a :class:`_MatchJob` per call), so serving
many short queries does not pay thread spin-up per query.  Because CPython's
GIL serializes pure-Python bytecode, wall-clock speedup is not representative
of the paper's NUMA hardware; the :class:`ParallelStats` therefore also
reports the *work-partition speedup* ``total work / max per-worker work``
(work = candidate-region vertices explored plus search recursions), which is
the load-balance quantity Figure 16 actually demonstrates.  Both metrics are
reported by the Figure 16 benchmark.

The primitive API is :meth:`ParallelMatcher.iter_match_batches`: workers
push columnar :class:`~repro.matching.solution_batch.SolutionBatch` objects
onto a queue and the generator drains it, so the consumer streams solutions
while workers are still searching, without a full result list ever being
materialized by the matcher itself (:meth:`iter_match` is the row-iterating
scalar adapter over the same stream).  A ``max_results`` limit (threaded
down from the engine's ``limit_hint``) or an abandoned generator sets the
job's stop event, so workers cease searching instead of enumerating
embeddings nobody will read.
"""

from __future__ import annotations

import queue
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.matching.candidate_region import VertexPredicate
from repro.matching.config import MatchConfig
from repro.matching.shard_protocol import (
    StreamGate,
    StreamOutcome,
    chunk_ranges,
    merge_solution_batches,
    run_chunk,
    run_sequential_batches,
)
from repro.matching.solution_batch import SolutionBatch
from repro.matching.turbo import PreparedQuery, Solution, prepare_query


@dataclass
class ParallelStats:
    """Outcome of a parallel match."""

    workers: int
    chunk_size: int
    elapsed_ms: float
    solutions: int
    per_worker_work: List[int] = field(default_factory=list)
    per_chunk_work: List[int] = field(default_factory=list)

    @property
    def total_work(self) -> int:
        """Sum of per-worker work units."""
        return sum(self.per_worker_work)

    @property
    def work_speedup(self) -> float:
        """Idealized speedup assuming perfectly parallel workers.

        ``total work / max per-worker work`` — the dynamic-chunking load
        balance the paper's Figure 16 measures on NUMA hardware.
        """
        busiest = max(self.per_worker_work, default=0)
        if busiest == 0:
            return float(len(self.per_worker_work) or 1)
        return self.total_work / busiest

    def simulated_speedup(self, workers: Optional[int] = None) -> float:
        """Speed-up of a simulated dynamic schedule over ``workers`` workers.

        CPython's GIL serializes the actual threads, so the measured
        ``work_speedup`` under-reports load balance when the whole workload
        drains before the other threads even start.  This helper replays the
        recorded per-chunk work through a greedy longest-processing-time
        schedule, which is what the paper's dynamic chunking achieves on real
        hardware.
        """
        worker_count = workers if workers is not None else self.workers
        if worker_count <= 1 or not self.per_chunk_work:
            return 1.0
        loads = [0] * worker_count
        for work in sorted(self.per_chunk_work, reverse=True):
            loads[loads.index(min(loads))] += work
        busiest = max(loads)
        total = sum(self.per_chunk_work)
        if busiest == 0:
            return float(worker_count)
        return total / busiest


class _MatchJob:
    """One query's worth of work, shared by every pool worker.

    Carries everything a worker needs (so the long-lived worker threads hold
    no reference to the :class:`ParallelMatcher` and cannot keep it alive),
    plus the consumer-facing queues, the stop event and the shared counters.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        config: MatchConfig,
        query: QueryGraph,
        prepared: PreparedQuery,
        predicates: Dict[int, VertexPredicate],
        chunk_size: int,
        expected_workers: int,
        region_cache=None,
        region_key=None,
        warm_only: bool = False,
    ):
        self.graph = graph
        self.config = config
        self.query = query
        self.prepared = prepared
        self.predicates = predicates
        self.root_predicate = predicates.get(prepared.start_vertex)
        self.expected_workers = expected_workers
        #: Cross-query region cache (the engine's, shared by every worker
        #: thread) plus the stable per-(query, config) key prefix.
        self.region_cache = region_cache
        self.region_key = region_key
        #: Cache-warming pass: explore + cache regions, skip the search.
        self.warm_only = warm_only

        # Dynamic chunking: workers repeatedly pop small chunks of starting
        # vertices, which evens out skewed candidate-region sizes.
        self.chunks: "queue.Queue[Sequence[int]]" = queue.Queue()
        candidates = prepared.start_candidates
        for begin, end in chunk_ranges(len(candidates), chunk_size):
            self.chunks.put(candidates[begin:end])

        #: Bounded handoff of columnar solution batches (backpressure: a slow
        #: consumer suspends the workers instead of accumulating the full
        #: result set).  ``None`` entries are wake tokens a finishing worker
        #: leaves so the consumer re-checks job completion promptly.
        self.output: "queue.Queue[Optional[SolutionBatch]]" = queue.Queue(
            maxsize=max(2 * expected_workers, 8)
        )
        #: Set when the consumer stops early (result limit reached or the
        #: generator abandoned): workers finish their current batch and move
        #: on to the next job instead of searching the rest of the queue.
        self.stop = threading.Event()
        #: Work counters and errors are reported through shared state (under
        #: a lock) rather than queue markers, so delivering them can never
        #: block on the bounded queue.
        self.lock = threading.Lock()
        self.per_worker_work = [0] * expected_workers
        self.per_chunk_work: List[int] = []
        self.errors: List[BaseException] = []
        self.finished_workers = 0
        #: Set by the last worker to leave the job; the consumer waits on it
        #: before aggregating statistics (the pool equivalent of join()).
        self.done = threading.Event()

    # ------------------------------------------------------------- worker side
    def emit(self, batch: SolutionBatch) -> bool:
        """Stop-aware bounded put; False once the consumer stopped."""
        while not self.stop.is_set():
            try:
                self.output.put(batch, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def run(self, worker_index: int) -> None:
        """Drain start-vertex chunks until the job is exhausted or stopped.

        The per-chunk matching core is the shared
        :func:`~repro.matching.shard_protocol.run_chunk`, so thread and
        process shards execute identical semantics.
        """
        local_work = 0
        local_chunk_work: List[int] = []
        try:
            while not self.stop.is_set():
                try:
                    chunk = self.chunks.get_nowait()
                except queue.Empty:
                    break
                chunk_work = run_chunk(
                    self.graph, self.config, self.query, self.prepared,
                    self.predicates, self.root_predicate, chunk,
                    emit=self.emit, stopped=self.stop.is_set,
                    region_cache=self.region_cache, region_key=self.region_key,
                    warm_only=self.warm_only,
                )
                local_work += chunk_work
                local_chunk_work.append(chunk_work)
        except BaseException as exc:  # noqa: BLE001 - re-raised on the consumer side
            with self.lock:
                self.errors.append(exc)
        finally:
            with self.lock:
                self.per_worker_work[worker_index] += local_work
                self.per_chunk_work.extend(local_chunk_work)
                self.finished_workers += 1
                last = self.finished_workers >= self.expected_workers
            if last:
                self.done.set()
            try:
                # Wake token so the consumer notices this worker finished
                # without waiting out its poll timeout; dropping it when
                # the queue is full is fine — a full queue means the
                # consumer is active and will poll liveness soon.
                self.output.put_nowait(None)
            except queue.Full:
                pass


def _pool_worker(jobs: "queue.Queue[Optional[_MatchJob]]", worker_index: int) -> None:
    """Long-lived pool thread: process jobs until the shutdown sentinel.

    Deliberately a module-level function over the jobs queue only, so pool
    threads never hold a reference to their :class:`ParallelMatcher` and the
    matcher stays garbage-collectable (its finalizer shuts the pool down).
    """
    while True:
        job = jobs.get()
        if job is None:
            return
        job.run(worker_index)


def _shutdown_pool(jobs: "queue.Queue[Optional[_MatchJob]]", workers: int) -> None:
    """Ask every pool thread to exit (used by close() and the GC finalizer)."""
    for _ in range(workers):
        jobs.put(None)


class ParallelMatcher:
    """Matches queries by distributing starting vertices over a worker pool.

    The pool is lazy and persistent: threads start on the first parallel
    match and are reused for every subsequent query, which is what makes an
    engine-held matcher cheap for high-throughput repeated-query serving.
    :meth:`close` shuts the pool down explicitly; an abandoned matcher shuts
    it down via a GC finalizer (worker threads never reference the matcher).
    """

    def __init__(
        self,
        graph: LabeledGraph,
        config: Optional[MatchConfig] = None,
        workers: int = 4,
        chunk_size: int = 8,
    ):
        self.graph = graph
        self.config = config if config is not None else MatchConfig.turbo_hom_pp()
        self.workers = max(1, workers)
        self.chunk_size = max(1, chunk_size)
        self.last_stats: Optional[ParallelStats] = None
        self._jobs: "queue.Queue[Optional[_MatchJob]]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._finalizer: Optional[weakref.finalize] = None
        #: Jobs whose consumer generator may still be alive.  close() must
        #: stop them *before* joining the workers: a worker blocked on a full
        #: bounded output queue only re-checks its job's stop event, so
        #: joining without stopping active jobs would deadlock.
        self._active_jobs: "weakref.WeakSet[_MatchJob]" = weakref.WeakSet()
        #: Serializes streams across threads (same-thread overlap keeps the
        #: historical supersede semantics; see :class:`StreamGate`).
        self._gate = StreamGate()

    # ------------------------------------------------------------------- pool
    def _ensure_pool(self) -> None:
        """Start the worker threads if they are not running yet."""
        if self._threads and all(thread.is_alive() for thread in self._threads):
            return
        self._threads = [
            threading.Thread(
                target=_pool_worker,
                args=(self._jobs, index),
                name=f"turbohom-pool-{index}",
                daemon=True,
            )
            for index in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()
        self._finalizer = weakref.finalize(self, _shutdown_pool, self._jobs, self.workers)

    def close(self) -> None:
        """Shut the worker pool down and join its threads.

        Safe to call multiple times; a later match transparently restarts
        the pool.  Any job still being consumed is stopped first (its
        generator keeps draining already-delivered batches but the workers
        cease searching), so closing the matcher mid-iteration cannot
        deadlock on the bounded result queue.
        """
        if not self._threads:
            self._gate.force_release()
            return
        # Shutdown ordering: stop active jobs, then enqueue the sentinels,
        # then join.  A worker blocked in a stop-aware put on a full output
        # queue needs its job stopped before it can reach the sentinel.
        for job in list(self._active_jobs):
            job.stop.set()
        # Unblock any thread queued behind a stream that will never finish
        # normally; its job was just stopped, so the revoked stream ends.
        self._gate.force_release()
        if self._finalizer is not None:
            self._finalizer()  # pushes one sentinel per worker, exactly once
            self._finalizer = None
        for thread in self._threads:
            thread.join()
        self._threads = []
        # Fresh queue: any unconsumed sentinels must not kill a restarted pool.
        self._jobs = queue.Queue()

    # ------------------------------------------------------------------ match
    def match(
        self,
        query: QueryGraph,
        vertex_predicates: Optional[Dict[int, VertexPredicate]] = None,
        max_results: Optional[int] = None,
        prepared: Optional[PreparedQuery] = None,
    ) -> Tuple[List[Solution], ParallelStats]:
        """Return all solutions plus parallel execution statistics."""
        solutions = list(self.iter_match(query, vertex_predicates, max_results, prepared))
        assert self.last_stats is not None
        return solutions, self.last_stats

    def iter_match(
        self,
        query: QueryGraph,
        vertex_predicates: Optional[Dict[int, VertexPredicate]] = None,
        max_results: Optional[int] = None,
        prepared: Optional[PreparedQuery] = None,
        region_cache=None,
        region_key=None,
    ) -> Iterator[Solution]:
        """Stream solutions one at a time (row adapter over the batches)."""
        for batch in self.iter_match_batches(
            query, vertex_predicates, max_results, prepared, region_cache, region_key
        ):
            yield from batch.iter_rows()

    def iter_match_batches(
        self,
        query: QueryGraph,
        vertex_predicates: Optional[Dict[int, VertexPredicate]] = None,
        max_results: Optional[int] = None,
        prepared: Optional[PreparedQuery] = None,
        region_cache=None,
        region_key=None,
        warm_only: bool = False,
    ) -> Iterator[SolutionBatch]:
        """Stream columnar solution batches as the pool workers produce them.

        ``max_results`` (or the config's ``max_results``) stops workers once
        that many solutions were delivered (the final batch is sliced to the
        limit); ``prepared`` supplies precompiled per-query state so repeated
        queries skip start-vertex selection and query-tree construction.
        ``self.last_stats`` is populated once the generator is exhausted.

        Jobs are serialized per pool.  Starting a new match from the thread
        whose earlier stream is still open *supersedes* the old stream,
        which keeps whatever it already delivered and then ends (that
        thread cannot drive both, so waiting would deadlock).  A match
        started from any *other* thread blocks until the open stream
        finishes, so concurrent consumers always see complete results.
        """
        start_time = time.perf_counter()
        predicates = vertex_predicates or {}

        limit = max_results if max_results is not None else self.config.max_results
        if limit is not None and limit <= 0:
            self.last_stats = ParallelStats(
                workers=self.workers,
                chunk_size=self.chunk_size,
                elapsed_ms=0.0,
                solutions=0,
            )
            return

        if query.vertex_count() <= 1 or self.workers == 1:
            def publish(solutions_count: int, work: int, elapsed: float) -> None:
                self.last_stats = ParallelStats(
                    workers=1,
                    chunk_size=self.chunk_size,
                    elapsed_ms=elapsed,
                    solutions=solutions_count,
                    per_worker_work=[work],
                    per_chunk_work=[work],
                )

            yield from run_sequential_batches(
                self.graph, self.config, query, predicates, limit, prepared, publish,
                region_cache=region_cache, region_key=region_key,
            )
            return

        if prepared is None:
            prepared = prepare_query(self.graph, query, self.config)
        # Cross-thread serialization: a second thread waits here until the
        # open stream finishes; the owning thread passes straight through
        # (inheriting the lease) and supersedes its predecessor below.
        lease = self._gate.acquire()
        try:
            job = _MatchJob(
                self.graph, self.config, query, prepared, predicates,
                self.chunk_size, self.workers,
                region_cache=region_cache, region_key=region_key,
                warm_only=warm_only,
            )
            self._ensure_pool()
            # Jobs are serialized per pool: a predecessor whose stream was
            # left open (suspended, not closed) would keep workers parked in
            # its bounded output queue and starve this job — supersede it.
            # Only the thread that owns the old stream can reach this point
            # while it is open; the old stream keeps whatever was already
            # queued for it and then ends.
            for previous in list(self._active_jobs):
                if not previous.done.is_set():
                    previous.stop.set()
                    previous.done.wait()
            self._active_jobs.add(job)
            for _ in range(self.workers):
                self._jobs.put(job)
        except BaseException:
            self._gate.release(lease)
            raise

        def poll(timeout: float) -> Optional[SolutionBatch]:
            """Next batch, a zero-row batch for a wake token, None when idle."""
            try:
                batch = job.output.get(timeout=timeout) if timeout else job.output.get_nowait()
            except queue.Empty:
                return None
            return batch if batch is not None else SolutionBatch.empty()

        outcome = StreamOutcome()
        try:
            yield from merge_solution_batches(poll, job.done.is_set, limit, outcome)
        finally:
            # Reached on exhaustion, on the result limit, and on generator
            # abandonment: tell workers to stop after their current batch
            # (emit() and the region loop poll the event), then wait for all
            # of them to leave the job before aggregating statistics.
            job.stop.set()
            job.done.wait()
            elapsed = (time.perf_counter() - start_time) * 1000.0
            self.last_stats = ParallelStats(
                workers=self.workers,
                chunk_size=self.chunk_size,
                elapsed_ms=elapsed,
                solutions=outcome.delivered,
                per_worker_work=job.per_worker_work,
                per_chunk_work=job.per_chunk_work,
            )
            self._gate.release(lease)
        # A worker error is surfaced only when the enumeration ran to
        # exhaustion.  After an intentional early stop (max_results reached)
        # the delivered solutions are complete and the sequential path would
        # never have touched the failing region either — raising here would
        # make the same query non-deterministically raise or succeed
        # depending on worker timing.
        if job.errors and not outcome.stopped_early:
            raise job.errors[0]
