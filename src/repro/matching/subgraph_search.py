"""``SubgraphSearch`` and ``IsJoinable`` (Algorithm 2) with the ``+INT`` optimization.

The search walks the matching order; at each step the candidate set comes
from the candidate region keyed by the parent's matched data vertex, and
non-tree edges to already-matched query vertices are verified:

* **original IsJoinable** — for each candidate, each non-tree edge is tested
  with a binary-search membership probe (``use_intersection=False``),
* **+INT** — the candidate list is intersected in bulk with the CSR
  adjacency *windows* of the already-matched endpoints, one k-way sorted
  intersection per step instead of per-candidate probes (Section 4.3), with
  no posting-list copies.

The injectivity test (line 4–6 of Algorithm 2) is applied only under
isomorphism semantics; removing it is exactly the modification that turns
TurboISO into TurboHOM (Section 2.2).

The core is the generator :func:`subgraph_search_iter`, which yields complete
mappings one at a time so consumers (``TurboMatcher.iter_match``, the
parallel matcher, the engines) can stream solutions without materializing
result lists; :func:`subgraph_search` is the callback adapter kept for
callers that want early-stop semantics.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryEdge, QueryGraph
from repro.matching.candidate_region import CandidateRegion
from repro.matching.config import MatchConfig
from repro.matching.query_tree import QueryTree
from repro.utils.intersect import Window, as_window, intersect_windows

#: Called with the complete mapping (query vertex index -> data vertex id);
#: returns False to stop the search early (e.g. when max_results is reached).
SolutionCallback = Callable[[List[int]], bool]


class SearchStatistics:
    """Counters exposed for profiling and the ablation benchmarks."""

    def __init__(self) -> None:
        self.recursions = 0
        self.joinable_probes = 0
        self.intersection_calls = 0
        self.solutions = 0

    def merge(self, other: "SearchStatistics") -> None:
        """Accumulate counters from another statistics object."""
        self.recursions += other.recursions
        self.joinable_probes += other.joinable_probes
        self.intersection_calls += other.intersection_calls
        self.solutions += other.solutions


def _non_tree_edges_by_vertex(
    query: QueryGraph, tree: QueryTree, order: Sequence[int]
) -> Dict[int, List[QueryEdge]]:
    """Non-tree edges grouped by the vertex matched *later* in the order.

    Each non-tree edge must be checked exactly once — at the moment its
    second endpoint is bound.  Grouping by the later endpoint guarantees the
    other endpoint is already matched at check time.
    """
    position = {vertex: index for index, vertex in enumerate(order)}
    grouped: Dict[int, List[QueryEdge]] = {vertex: [] for vertex in order}
    for edge in tree.non_tree_edges:
        later = edge.source if position[edge.source] >= position[edge.target] else edge.target
        grouped[later].append(edge)
    return grouped


def _adjacency_window_for_edge(
    graph: LabeledGraph, edge: QueryEdge, current: int, mapping: List[int]
) -> Window:
    """Data vertices matchable to ``current`` so that ``edge`` exists.

    ``edge`` connects ``current`` to an already-matched query vertex; the
    returned window views the data vertices adjacent to the matched endpoint
    in the direction required by the edge.
    """
    if edge.source == current:
        matched = mapping[edge.target]
        return graph.in_window(matched, edge.label)
    matched = mapping[edge.source]
    return graph.out_window(matched, edge.label)




def subgraph_search_iter(
    graph: LabeledGraph,
    query: QueryGraph,
    tree: QueryTree,
    region: CandidateRegion,
    order: Sequence[int],
    config: MatchConfig,
    stats: Optional[SearchStatistics] = None,
) -> Iterator[List[int]]:
    """Yield every mapping of one candidate region, one solution at a time.

    ``order[0]`` must be the tree root, already bound to the region's start
    data vertex.  Each yielded list is a fresh copy, safe for the consumer to
    keep.  Abandoning the generator mid-iteration is the streaming
    equivalent of an early-stop callback.
    """
    stats = stats if stats is not None else SearchStatistics()
    vertex_count = query.vertex_count()
    mapping: List[int] = [-1] * vertex_count
    mapping[tree.root] = region.start_data_vertex
    used: Dict[int, int] = {}
    homomorphism = config.homomorphism
    if not homomorphism:
        used[region.start_data_vertex] = 1

    non_tree = _non_tree_edges_by_vertex(query, tree, order)
    total_depth = len(order)

    # Non-tree edges grouped at the root can only be self-loops (every other
    # vertex comes later in the order); verify them against the start vertex
    # before the search begins.
    for edge in non_tree.get(order[0], []):
        stats.joinable_probes += 1
        if not graph.has_edge(region.start_data_vertex, region.start_data_vertex, edge.label):
            return

    use_intersection = config.use_intersection
    #: Per query vertex: the non-tree edges split into self-loops (checked by
    #: per-candidate has_edge probes in both strategies) and cross edges
    #: (adjacency of the already-matched endpoint).
    split_edges: Dict[int, Tuple[List[QueryEdge], List[QueryEdge]]] = {}
    for vertex, edges in non_tree.items():
        loops = [e for e in edges if e.source == e.target]
        cross = [e for e in edges if e.source != e.target]
        split_edges[vertex] = (loops, cross)

    has_edge = graph.has_edge

    def recurse(depth: int) -> Iterator[List[int]]:
        stats.recursions += 1
        if depth == total_depth:
            stats.solutions += 1
            yield list(mapping)
            return
        current = order[depth]
        parent = tree.parent[current]
        candidates: Sequence[int] = region.get(current, mapping[parent])
        loop_edges, cross_edges = split_edges[current]

        # A cross edge connects ``current`` to an endpoint already matched at
        # this depth, so its adjacency window is fixed for the whole
        # candidate loop and is computed once per step.
        probe_windows: List[Window] = []
        probe_edges: List[QueryEdge] = []
        if cross_edges:
            if use_intersection:
                # +INT: one bulk intersection of the candidate list with all
                # cross-edge windows (Section 4.3).
                stats.intersection_calls += 1
                windows: List[Window] = [as_window(candidates)]
                for edge in cross_edges:
                    windows.append(_adjacency_window_for_edge(graph, edge, current, mapping))
                candidates = intersect_windows(windows)
            else:
                # Original IsJoinable: one binary-search membership probe per
                # candidate inside each fixed window.  Blank-label edges stay
                # on per-candidate has_edge probes — their "window" would be
                # a fresh union of every per-label posting list of the
                # matched endpoint, an O(degree) copy per step.
                for edge in cross_edges:
                    if edge.label is None:
                        probe_edges.append(edge)
                    else:
                        probe_windows.append(
                            _adjacency_window_for_edge(graph, edge, current, mapping)
                        )

        for candidate in candidates:
            if not homomorphism and used.get(candidate):
                continue
            joinable = True
            for base, lo, hi in probe_windows:
                stats.joinable_probes += 1
                i = bisect_left(base, candidate, lo, hi)
                if i >= hi or base[i] != candidate:
                    joinable = False
                    break
            if joinable:
                for edge in probe_edges:
                    stats.joinable_probes += 1
                    if edge.source == current:
                        exists = has_edge(candidate, mapping[edge.target], edge.label)
                    else:
                        exists = has_edge(mapping[edge.source], candidate, edge.label)
                    if not exists:
                        joinable = False
                        break
            if joinable:
                for edge in loop_edges:
                    # Self-loop pattern (?x p ?x): the candidate must have the loop.
                    stats.joinable_probes += 1
                    if not has_edge(candidate, candidate, edge.label):
                        joinable = False
                        break
            if not joinable:
                continue
            mapping[current] = candidate
            if not homomorphism:
                used[candidate] = used.get(candidate, 0) + 1
            yield from recurse(depth + 1)
            mapping[current] = -1
            if not homomorphism:
                used[candidate] -= 1

    yield from recurse(1)


def subgraph_search(
    graph: LabeledGraph,
    query: QueryGraph,
    tree: QueryTree,
    region: CandidateRegion,
    order: Sequence[int],
    config: MatchConfig,
    on_solution: SolutionCallback,
    stats: Optional[SearchStatistics] = None,
) -> bool:
    """Enumerate all mappings for one candidate region through a callback.

    Returns False when the callback requested an early stop.
    """
    for mapping in subgraph_search_iter(graph, query, tree, region, order, config, stats):
        if not on_solution(mapping):
            return False
    return True
