"""``SubgraphSearch`` and ``IsJoinable`` (Algorithm 2) with the ``+INT`` optimization.

The search walks the matching order; at each step the candidate set comes
from the candidate region keyed by the parent's matched data vertex, and
non-tree edges to already-matched query vertices are verified:

* **original IsJoinable** — for each candidate, each non-tree edge is tested
  with a binary-search membership probe (``use_intersection=False``),
* **+INT** — the candidate span is intersected in bulk with the CSR
  adjacency *windows* of the already-matched endpoints, one k-way sorted
  intersection per step instead of per-candidate probes (Section 4.3), with
  no posting-list copies and the result written into a reusable per-depth
  buffer.

The injectivity test (line 4–6 of Algorithm 2) is applied only under
isomorphism semantics; removing it is exactly the modification that turns
TurboISO into TurboHOM (Section 2.2).

The core is :class:`SubgraphSearcher`, an **explicit-stack enumerator** over
:class:`~repro.matching.region_arena.RegionArena` slices: per-depth cursor
arrays replace the recursive generator (no Python frame per depth), and
:meth:`SubgraphSearcher.fill` writes each complete mapping **directly into
SolutionBatch columns** — no per-solution list is ever allocated on the
batch path.  One searcher is reused across consecutive regions (and pooled
per thread via :func:`acquire_searcher`): the non-tree-edge grouping and
split are cached as long as the query, tree, matching order and config are
unchanged, which under ``+REUSE`` means once per query.

:func:`subgraph_search_iter` (one ``List[int]`` per solution) and
:func:`subgraph_search` (early-stop callback) are thin row adapters kept
for oracle tests and callers outside the batch pipeline.

``SearchStatistics.recursions`` deliberately keeps its historical meaning —
one count per *expansion step* (region entry plus every accepted candidate),
exactly what the recursive core counted as calls — so the ablation and
Figure 15/16 benchmarks report unchanged semantics over the iterative core.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryEdge, QueryGraph
from repro.matching.config import MatchConfig
from repro.matching.query_tree import QueryTree
from repro.matching.region_arena import RegionArena
from repro.matching.solution_batch import SolutionBatch
from repro.utils.intersect import Window, _intersect_two_into, intersect_windows_into

#: Called with the complete mapping (query vertex index -> data vertex id);
#: returns False to stop the search early (e.g. when max_results is reached).
SolutionCallback = Callable[[List[int]], bool]


class SearchStatistics:
    """Counters exposed for profiling and the ablation benchmarks.

    ``recursions`` counts expansion steps (one per region entry plus one per
    accepted candidate at any depth) — the exact call count of the former
    recursive core, kept stable so work accounting and the benchmark tables
    are comparable across the rewrite.
    """

    def __init__(self) -> None:
        self.recursions = 0
        self.joinable_probes = 0
        self.intersection_calls = 0
        self.solutions = 0

    def merge(self, other: "SearchStatistics") -> None:
        """Accumulate counters from another statistics object."""
        self.recursions += other.recursions
        self.joinable_probes += other.joinable_probes
        self.intersection_calls += other.intersection_calls
        self.solutions += other.solutions


def _non_tree_edges_by_vertex(
    query: QueryGraph, tree: QueryTree, order: Sequence[int]
) -> Dict[int, List[QueryEdge]]:
    """Non-tree edges grouped by the vertex matched *later* in the order.

    Each non-tree edge must be checked exactly once — at the moment its
    second endpoint is bound.  Grouping by the later endpoint guarantees the
    other endpoint is already matched at check time.
    """
    position = {vertex: index for index, vertex in enumerate(order)}
    grouped: Dict[int, List[QueryEdge]] = {vertex: [] for vertex in order}
    for edge in tree.non_tree_edges:
        later = edge.source if position[edge.source] >= position[edge.target] else edge.target
        grouped[later].append(edge)
    return grouped


def _adjacency_window_for_edge(
    graph: LabeledGraph, edge: QueryEdge, current: int, mapping: Sequence[int]
) -> Window:
    """Data vertices matchable to ``current`` so that ``edge`` exists.

    ``edge`` connects ``current`` to an already-matched query vertex; the
    returned window views the data vertices adjacent to the matched endpoint
    in the direction required by the edge.
    """
    if edge.source == current:
        matched = mapping[edge.target]
        return graph.in_window(matched, edge.label)
    matched = mapping[edge.source]
    return graph.out_window(matched, edge.label)


class SubgraphSearcher:
    """Explicit-stack enumerator of one candidate region's mappings.

    Lifecycle: :meth:`reset` binds the searcher to a region (cheap — the
    per-(query, tree, order, config) static structures are cached across
    resets), then :meth:`fill` is called repeatedly to append complete
    solutions into columnar batch collectors until :attr:`exhausted`.
    All per-depth state lives in reusable grow-only arrays, so a pooled
    searcher enumerates region after region without allocating.
    """

    __slots__ = (
        "exhausted",
        "_graph",
        "_query",
        "_tree",
        "_config",
        "_order",
        "_stats",
        "_region",
        "_width",
        "_total",
        "_homomorphism",
        "_use_intersection",
        "_mapping",
        "_used",
        "_chosen",
        "_pool",
        "_spans",
        "_slices",
        "_stride",
        "_currents",
        "_parents",
        "_loops",
        "_cross",
        "_root_loops",
        "_seq_base",
        "_seq_pos",
        "_seq_hi",
        "_ibufs",
        "_pwindows",
        "_pedges",
        "_wbuf",
        "_depth",
    )

    def __init__(self) -> None:
        self.exhausted = True
        self._graph: Optional[LabeledGraph] = None
        self._query: Optional[QueryGraph] = None
        self._tree: Optional[QueryTree] = None
        self._config: Optional[MatchConfig] = None
        self._order: Optional[Sequence[int]] = None
        self._stats: Optional[SearchStatistics] = None
        self._region: Optional[RegionArena] = None
        self._width = 0
        self._total = 0
        self._homomorphism = True
        self._use_intersection = True
        self._mapping: List[int] = []
        self._used: Dict[int, int] = {}
        self._chosen: List[int] = []
        self._pool: Optional[array] = None
        self._spans: Optional[array] = None
        self._slices: Optional[Dict[int, int]] = None
        self._stride = 0
        self._currents: List[int] = []
        self._parents: List[int] = []
        self._loops: List[List[QueryEdge]] = []
        self._cross: List[List[QueryEdge]] = []
        self._root_loops: List[QueryEdge] = []
        self._seq_base: List[object] = []
        self._seq_pos: List[int] = []
        self._seq_hi: List[int] = []
        self._ibufs: List[array] = []
        self._pwindows: List[List[Window]] = []
        self._pedges: List[List[QueryEdge]] = []
        self._wbuf: List[Window] = []
        self._depth = 0

    # ------------------------------------------------------------ preparation
    def _prepare_static(
        self,
        graph: LabeledGraph,
        query: QueryGraph,
        tree: QueryTree,
        order: Sequence[int],
        config: MatchConfig,
    ) -> None:
        """Derive the per-(query, tree, order) structures; cached across resets."""
        total = len(order)
        non_tree = _non_tree_edges_by_vertex(query, tree, order)
        # Non-tree edges grouped at the root can only be self-loops (every
        # other vertex comes later in the order).
        self._root_loops = non_tree.get(order[0], [])
        currents: List[int] = [0] * total
        parents: List[int] = [0] * total
        loops: List[List[QueryEdge]] = [[] for _ in range(total)]
        cross: List[List[QueryEdge]] = [[] for _ in range(total)]
        for depth in range(total):
            vertex = order[depth]
            currents[depth] = vertex
            parents[depth] = tree.parent.get(vertex, vertex)
            if depth == 0:
                continue
            for edge in non_tree[vertex]:
                (loops if edge.source == edge.target else cross)[depth].append(edge)
        self._currents = currents
        self._parents = parents
        self._loops = loops
        self._cross = cross
        # Grow the per-depth cursor state to the new order length.
        while len(self._seq_base) < total:
            self._seq_base.append(None)
            self._seq_pos.append(0)
            self._seq_hi.append(0)
            self._chosen.append(-1)
            self._ibufs.append(array("q"))
            self._pwindows.append([])
            self._pedges.append([])
        self._query = query
        self._tree = tree
        self._order = order
        self._config = config
        self._total = total
        self._width = query.vertex_count()
        self._homomorphism = config.homomorphism
        self._use_intersection = config.use_intersection

    def reset(
        self,
        graph: LabeledGraph,
        query: QueryGraph,
        tree: QueryTree,
        region: RegionArena,
        order: Sequence[int],
        config: MatchConfig,
        stats: SearchStatistics,
    ) -> None:
        """Bind the searcher to one region and rewind the enumeration.

        ``order[0]`` must be the tree root, already bound to the region's
        start data vertex (exactly the contract of the former recursive
        core).
        """
        if (
            self._query is not query
            or self._tree is not tree
            or self._config is not config
            or self._graph is not graph
            or self._order != order
        ):
            self._prepare_static(graph, query, tree, order, config)
        self._graph = graph
        self._stats = stats
        self._region = region
        self._pool = region.pool
        self._spans = region.spans
        self._slices = region.slices
        self._stride = region.stride
        width = self._width
        mapping = self._mapping
        if len(mapping) < width:
            mapping.extend([-1] * (width - len(mapping)))
        start = region.start_data_vertex
        mapping[tree.root] = start
        used = self._used
        used.clear()
        if not self._homomorphism:
            used[start] = 1
        # Root self-loop check (?x p ?x at the start vertex) before anything
        # else — on failure the region has no solutions at all.
        has_edge = graph.has_edge
        for edge in self._root_loops:
            stats.joinable_probes += 1
            if not has_edge(start, start, edge.label):
                self.exhausted = True
                return
        stats.recursions += 1  # the region-entry expansion step
        self.exhausted = False
        if self._total == 1:
            self._depth = 0
            return
        self._depth = 1
        self._enter(1)

    # -------------------------------------------------------------- stepping
    def _enter(self, depth: int) -> None:
        """Compute the candidate cursor for ``depth`` (parent just matched)."""
        current = self._currents[depth]
        mapping = self._mapping
        slot = self._slices.get(current * self._stride + mapping[self._parents[depth]], -1)
        if slot < 0:
            lo = hi = 0
        else:
            index = 2 * slot
            spans = self._spans
            lo = spans[index]
            hi = spans[index + 1]
        cross_edges = self._cross[depth]
        if cross_edges:
            if self._use_intersection:
                # +INT: one bulk intersection of the candidate span with all
                # cross-edge windows (Section 4.3), into a reusable buffer.
                self._stats.intersection_calls += 1
                graph = self._graph
                buffer = self._ibufs[depth]
                if len(cross_edges) == 1:
                    # The dominant shape (one non-tree edge): intersect the
                    # span with the single adjacency window directly, no
                    # window-list round trip (mirrored by fill()'s inlined
                    # descend — keep the two in sync).
                    edge = cross_edges[0]
                    if edge.source == current:
                        wbase, wlo, whi = graph.in_window(mapping[edge.target], edge.label)
                    else:
                        wbase, wlo, whi = graph.out_window(mapping[edge.source], edge.label)
                    if whi - wlo == 1 and lo < hi:
                        # Degree-1 adjacency: the whole intersection is one
                        # bounded bisect into the span.
                        value = wbase[wlo]
                        pool = self._pool
                        index = bisect_left(pool, value, lo, hi)
                        if index < hi and pool[index] == value:
                            if len(buffer):
                                buffer[0] = value
                            else:
                                buffer.append(value)
                            count = 1
                        else:
                            count = 0
                    else:
                        count = _intersect_two_into(
                            (self._pool, lo, hi), (wbase, wlo, whi), buffer
                        )
                else:
                    wbuf = self._wbuf
                    wbuf.clear()
                    wbuf.append((self._pool, lo, hi))
                    for edge in cross_edges:
                        wbuf.append(
                            _adjacency_window_for_edge(graph, edge, current, mapping)
                        )
                    count = intersect_windows_into(wbuf, buffer)
                self._seq_base[depth] = buffer
                self._seq_pos[depth] = 0
                self._seq_hi[depth] = count
                return
            # Original IsJoinable: one binary-search membership probe per
            # candidate inside each fixed window.  Blank-label edges stay on
            # per-candidate has_edge probes — their "window" would be a fresh
            # union of every per-label posting list of the matched endpoint,
            # an O(degree) copy per step.
            windows = self._pwindows[depth]
            probes = self._pedges[depth]
            windows.clear()
            probes.clear()
            graph = self._graph
            mapping = self._mapping
            for edge in cross_edges:
                if edge.label is None:
                    probes.append(edge)
                else:
                    windows.append(
                        _adjacency_window_for_edge(graph, edge, current, mapping)
                    )
        self._seq_base[depth] = self._pool
        self._seq_pos[depth] = lo
        self._seq_hi[depth] = hi

    def detach(self) -> None:
        """Drop every external reference held by this searcher.

        Pooled searchers outlive match calls; without this, a parked
        searcher would pin the graph (and, for shared-memory graphs, its
        exported ``memoryview`` windows — making ``shm.close()`` fail with
        "exported pointers exist") plus the last region's arrays.  The
        grow-only integer buffers are deliberately kept: they reference
        nothing and are the whole point of pooling.
        """
        self.exhausted = True
        self._graph = None
        self._query = None
        self._tree = None
        self._config = None
        self._order = None
        self._stats = None
        self._region = None
        self._pool = None
        self._spans = None
        self._slices = None
        self._used.clear()
        self._wbuf.clear()
        for windows in self._pwindows:
            windows.clear()
        for probes in self._pedges:
            probes.clear()
        for index in range(len(self._seq_base)):
            self._seq_base[index] = None
        self._currents = []
        self._parents = []
        self._loops = []
        self._cross = []
        self._root_loops = []

    def fill(self, columns: Sequence[array], budget: int) -> int:
        """Append up to ``budget`` complete solutions into ``columns``.

        ``columns`` are :meth:`SolutionBatch.collector` arrays indexed by
        query vertex; each appended row is ``width`` flat integer appends —
        no per-solution list.  Returns the number of rows appended; the
        region is done when :attr:`exhausted` turns True.
        """
        if self.exhausted or budget <= 0:
            return 0
        stats = self._stats
        mapping = self._mapping
        width = self._width
        if self._total == 1:
            # Single-vertex-with-self-loops query: the root mapping is the
            # only (already verified) solution of this region.
            stats.solutions += 1
            for index in range(width):
                columns[index].append(mapping[index])
            self.exhausted = True
            return 1

        graph = self._graph
        has_edge = graph.has_edge
        in_window = graph.in_window
        out_window = graph.out_window
        homomorphism = self._homomorphism
        used = self._used
        chosen = self._chosen
        currents = self._currents
        parents = self._parents
        loops_by = self._loops
        cross_by = self._cross
        pwindows = self._pwindows
        pedges = self._pedges
        seq_base = self._seq_base
        seq_pos = self._seq_pos
        seq_hi = self._seq_hi
        ibufs = self._ibufs
        pool = self._pool
        spans = self._spans
        slices_get = self._slices.get
        stride = self._stride
        use_intersection = self._use_intersection
        probing = not use_intersection
        last = self._total - 1
        depth = self._depth
        appended = 0
        appends = [column.append for column in columns]
        # Counters kept in locals for the duration of the scan and flushed
        # on every exit — the stats object stays authoritative at any yield
        # point while the inner loop never touches an attribute.
        recursions = 0
        solutions = 0
        probe_count = 0
        intersection_count = 0

        while True:
            base = seq_base[depth]
            pos = seq_pos[depth]
            hi = seq_hi[depth]
            current = currents[depth]
            loop_edges = loops_by[depth]
            if probing and cross_by[depth]:
                windows = pwindows[depth]
                probes = pedges[depth]
            else:
                windows = ()
                probes = ()
            descended = False
            while pos < hi:
                candidate = base[pos]
                pos += 1
                if not homomorphism and used.get(candidate):
                    continue
                joinable = True
                for wbase, wlo, whi in windows:
                    probe_count += 1
                    index = bisect_left(wbase, candidate, wlo, whi)
                    if index >= whi or wbase[index] != candidate:
                        joinable = False
                        break
                if joinable and probes:
                    for edge in probes:
                        probe_count += 1
                        if edge.source == current:
                            exists = has_edge(candidate, mapping[edge.target], edge.label)
                        else:
                            exists = has_edge(mapping[edge.source], candidate, edge.label)
                        if not exists:
                            joinable = False
                            break
                if joinable and loop_edges:
                    for edge in loop_edges:
                        # Self-loop pattern (?x p ?x): the candidate must
                        # carry the loop itself.
                        probe_count += 1
                        if not has_edge(candidate, candidate, edge.label):
                            joinable = False
                            break
                if not joinable:
                    continue
                recursions += 1  # accepted-candidate expansion step
                if depth == last:
                    solutions += 1
                    mapping[current] = candidate
                    for index in range(width):
                        appends[index](mapping[index])
                    appended += 1
                    if appended >= budget:
                        seq_pos[depth] = pos
                        self._depth = depth
                        stats.recursions += recursions
                        stats.solutions += solutions
                        stats.joinable_probes += probe_count
                        stats.intersection_calls += intersection_count
                        return appended
                    continue
                mapping[current] = candidate
                if not homomorphism:
                    used[candidate] = used.get(candidate, 0) + 1
                chosen[depth] = candidate
                seq_pos[depth] = pos
                depth += 1
                # Descend: the inlined mirror of _enter() — keep the two in
                # sync (reset() goes through the method, this loop pays no
                # call per accepted candidate).
                current = currents[depth]
                slot = slices_get(current * stride + mapping[parents[depth]], -1)
                if slot < 0:
                    span_lo = span_hi = 0
                else:
                    sindex = 2 * slot
                    span_lo = spans[sindex]
                    span_hi = spans[sindex + 1]
                cross_edges = cross_by[depth]
                if cross_edges:
                    if use_intersection:
                        intersection_count += 1
                        buffer = ibufs[depth]
                        if len(cross_edges) == 1:
                            edge = cross_edges[0]
                            if edge.source == current:
                                wbase, wlo, whi = in_window(mapping[edge.target], edge.label)
                            else:
                                wbase, wlo, whi = out_window(mapping[edge.source], edge.label)
                            if whi - wlo == 1 and span_lo < span_hi:
                                # Degree-1 adjacency (the star-closure /
                                # chain shape): the whole intersection is
                                # one bounded bisect into the span.
                                value = wbase[wlo]
                                index = bisect_left(pool, value, span_lo, span_hi)
                                if index < span_hi and pool[index] == value:
                                    if len(buffer):
                                        buffer[0] = value
                                    else:
                                        buffer.append(value)
                                    count = 1
                                else:
                                    count = 0
                            else:
                                count = _intersect_two_into(
                                    (pool, span_lo, span_hi), (wbase, wlo, whi), buffer
                                )
                        else:
                            wbuf = self._wbuf
                            wbuf.clear()
                            wbuf.append((pool, span_lo, span_hi))
                            for edge in cross_edges:
                                wbuf.append(
                                    _adjacency_window_for_edge(graph, edge, current, mapping)
                                )
                            count = intersect_windows_into(wbuf, buffer)
                        seq_base[depth] = buffer
                        seq_pos[depth] = 0
                        seq_hi[depth] = count
                    else:
                        probe_windows = pwindows[depth]
                        probe_edges = pedges[depth]
                        probe_windows.clear()
                        probe_edges.clear()
                        for edge in cross_edges:
                            if edge.label is None:
                                probe_edges.append(edge)
                            else:
                                probe_windows.append(
                                    _adjacency_window_for_edge(graph, edge, current, mapping)
                                )
                        seq_base[depth] = pool
                        seq_pos[depth] = span_lo
                        seq_hi[depth] = span_hi
                else:
                    seq_base[depth] = pool
                    seq_pos[depth] = span_lo
                    seq_hi[depth] = span_hi
                descended = True
                break
            if descended:
                continue
            # This depth is exhausted: backtrack.
            depth -= 1
            if depth == 0:
                self.exhausted = True
                self._depth = 1
                stats.recursions += recursions
                stats.solutions += solutions
                stats.joinable_probes += probe_count
                stats.intersection_calls += intersection_count
                return appended
            if not homomorphism:
                used[chosen[depth]] -= 1


# ----------------------------------------------------------------- pooling
#: Reusable searchers per thread, mirroring the arena pool — one acquire per
#: match loop / worker chunk, not per region.
_local = threading.local()
MAX_POOLED_SEARCHERS = 4


def acquire_searcher() -> SubgraphSearcher:
    """A reusable searcher from this thread's pool (fresh when dry)."""
    free = getattr(_local, "searchers", None)
    if free:
        return free.pop()
    return SubgraphSearcher()


def release_searcher(searcher: SubgraphSearcher) -> None:
    """Return a searcher to this thread's pool (external refs dropped)."""
    searcher.detach()
    free = getattr(_local, "searchers", None)
    if free is None:
        free = []
        _local.searchers = free
    if len(free) < MAX_POOLED_SEARCHERS:
        free.append(searcher)


# ---------------------------------------------------------------- adapters
def subgraph_search_iter(
    graph: LabeledGraph,
    query: QueryGraph,
    tree: QueryTree,
    region: RegionArena,
    order: Sequence[int],
    config: MatchConfig,
    stats: Optional[SearchStatistics] = None,
) -> Iterator[List[int]]:
    """Yield every mapping of one candidate region, one solution at a time.

    Row adapter over :class:`SubgraphSearcher` kept for the oracle tests and
    callback-style callers; each yielded list is a fresh copy, safe for the
    consumer to keep.  Solutions are produced one ``fill`` step at a time,
    so abandoning the generator stops the search exactly where the old
    recursive core would have (no read-ahead).  The batch pipeline never
    goes through here (pinned by the zero-per-solution-allocation test).
    """
    stats = stats if stats is not None else SearchStatistics()
    searcher = acquire_searcher()
    try:
        searcher.reset(graph, query, tree, region, order, config, stats)
        width = query.vertex_count()
        columns = SolutionBatch.collector(width)
        while not searcher.exhausted:
            for column in columns:
                del column[:]
            if searcher.fill(columns, 1):
                yield [column[0] for column in columns]
    finally:
        release_searcher(searcher)


def subgraph_search(
    graph: LabeledGraph,
    query: QueryGraph,
    tree: QueryTree,
    region: RegionArena,
    order: Sequence[int],
    config: MatchConfig,
    on_solution: SolutionCallback,
    stats: Optional[SearchStatistics] = None,
) -> bool:
    """Enumerate all mappings for one candidate region through a callback.

    Returns False when the callback requested an early stop.
    """
    for mapping in subgraph_search_iter(graph, query, tree, region, order, config, stats):
        if not on_solution(mapping):
            return False
    return True
