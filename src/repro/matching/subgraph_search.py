"""``SubgraphSearch`` and ``IsJoinable`` (Algorithm 2) with the ``+INT`` optimization.

The search walks the matching order; at each step the candidate set comes
from the candidate region keyed by the parent's matched data vertex, and
non-tree edges to already-matched query vertices are verified:

* **original IsJoinable** — for each candidate, each non-tree edge is tested
  with a binary-search membership probe (``use_intersection=False``),
* **+INT** — the candidate list is intersected in bulk with the adjacency
  lists of the already-matched endpoints, one k-way sorted intersection per
  step instead of per-candidate probes (Section 4.3).

The injectivity test (line 4–6 of Algorithm 2) is applied only under
isomorphism semantics; removing it is exactly the modification that turns
TurboISO into TurboHOM (Section 2.2).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryEdge, QueryGraph
from repro.matching.candidate_region import CandidateRegion
from repro.matching.config import MatchConfig
from repro.matching.query_tree import QueryTree
from repro.utils.intersect import intersect_many

#: Called with the complete mapping (query vertex index -> data vertex id);
#: returns False to stop the search early (e.g. when max_results is reached).
SolutionCallback = Callable[[List[int]], bool]


class SearchStatistics:
    """Counters exposed for profiling and the ablation benchmarks."""

    def __init__(self) -> None:
        self.recursions = 0
        self.joinable_probes = 0
        self.intersection_calls = 0
        self.solutions = 0

    def merge(self, other: "SearchStatistics") -> None:
        """Accumulate counters from another statistics object."""
        self.recursions += other.recursions
        self.joinable_probes += other.joinable_probes
        self.intersection_calls += other.intersection_calls
        self.solutions += other.solutions


def _non_tree_edges_by_vertex(
    query: QueryGraph, tree: QueryTree, order: Sequence[int]
) -> Dict[int, List[QueryEdge]]:
    """Non-tree edges grouped by the vertex matched *later* in the order.

    Each non-tree edge must be checked exactly once — at the moment its
    second endpoint is bound.  Grouping by the later endpoint guarantees the
    other endpoint is already matched at check time.
    """
    position = {vertex: index for index, vertex in enumerate(order)}
    grouped: Dict[int, List[QueryEdge]] = {vertex: [] for vertex in order}
    for edge in tree.non_tree_edges:
        later = edge.source if position[edge.source] >= position[edge.target] else edge.target
        grouped[later].append(edge)
    return grouped


def _adjacency_for_edge(
    graph: LabeledGraph, edge: QueryEdge, current: int, mapping: List[int]
) -> List[int]:
    """Data vertices that can be matched to ``current`` so that ``edge`` exists.

    ``edge`` connects ``current`` to an already-matched query vertex; the
    returned (sorted) list contains the data vertices adjacent to the matched
    endpoint in the direction required by the edge.
    """
    if edge.source == current:
        matched = mapping[edge.target]
        return graph.in_neighbors(matched, edge.label)
    matched = mapping[edge.source]
    return graph.out_neighbors(matched, edge.label)


def _is_joinable(
    graph: LabeledGraph,
    edges: Sequence[QueryEdge],
    current: int,
    candidate: int,
    mapping: List[int],
    stats: SearchStatistics,
) -> bool:
    """Original IsJoinable: membership probe per non-tree edge."""
    for edge in edges:
        stats.joinable_probes += 1
        if edge.source == edge.target:
            # Self-loop pattern (?x p ?x): the candidate must have the loop.
            if not graph.has_edge(candidate, candidate, edge.label):
                return False
        elif edge.source == current:
            if not graph.has_edge(candidate, mapping[edge.target], edge.label):
                return False
        else:
            if not graph.has_edge(mapping[edge.source], candidate, edge.label):
                return False
    return True


def subgraph_search(
    graph: LabeledGraph,
    query: QueryGraph,
    tree: QueryTree,
    region: CandidateRegion,
    order: Sequence[int],
    config: MatchConfig,
    on_solution: SolutionCallback,
    stats: Optional[SearchStatistics] = None,
) -> bool:
    """Enumerate all mappings for one candidate region.

    ``order[0]`` must be the tree root, already bound to the region's start
    data vertex.  Returns False when the callback requested an early stop.
    """
    stats = stats if stats is not None else SearchStatistics()
    vertex_count = query.vertex_count()
    mapping: List[int] = [-1] * vertex_count
    mapping[tree.root] = region.start_data_vertex
    used: Dict[int, int] = {}
    if not config.homomorphism:
        used[region.start_data_vertex] = 1

    non_tree = _non_tree_edges_by_vertex(query, tree, order)
    total_depth = len(order)

    # Non-tree edges grouped at the root can only be self-loops (every other
    # vertex comes later in the order); verify them against the start vertex
    # before the search begins.
    for edge in non_tree.get(order[0], []):
        stats.joinable_probes += 1
        if not graph.has_edge(region.start_data_vertex, region.start_data_vertex, edge.label):
            return True

    def recurse(depth: int) -> bool:
        stats.recursions += 1
        if depth == total_depth:
            stats.solutions += 1
            return on_solution(list(mapping))
        current = order[depth]
        parent = tree.parent[current]
        candidates = region.get(current, mapping[parent])
        check_edges = non_tree.get(current, [])

        if config.use_intersection and check_edges:
            # +INT: one bulk intersection for all non-tree edges of this step.
            # Self-loop edges cannot be expressed as a fixed adjacency list,
            # so they stay on the per-candidate probe path.
            bulk_edges = [e for e in check_edges if e.source != e.target]
            check_edges = [e for e in check_edges if e.source == e.target]
            if bulk_edges:
                stats.intersection_calls += 1
                lists: List[Sequence[int]] = [candidates]
                for edge in bulk_edges:
                    lists.append(_adjacency_for_edge(graph, edge, current, mapping))
                candidates = intersect_many(lists)

        for candidate in candidates:
            if not config.homomorphism and used.get(candidate):
                continue
            if check_edges and not _is_joinable(
                graph, check_edges, current, candidate, mapping, stats
            ):
                continue
            mapping[current] = candidate
            if not config.homomorphism:
                used[candidate] = used.get(candidate, 0) + 1
            keep_going = recurse(depth + 1)
            mapping[current] = -1
            if not config.homomorphism:
                used[candidate] -= 1
            if not keep_going:
                return False
        return True

    return recurse(1)
