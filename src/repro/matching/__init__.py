"""Subgraph isomorphism / e-graph homomorphism matching engines.

The package implements the paper's algorithm family:

* :class:`~repro.matching.turbo.TurboMatcher` — the TurboISO-style candidate
  region matcher, parameterized by :class:`~repro.matching.config.MatchConfig`
  (isomorphism vs homomorphism, and the four TurboHOM++ optimizations).
* :func:`~repro.matching.turbo.turbo_iso` / :func:`turbo_hom` /
  :func:`turbo_hom_pp` — convenience constructors with the paper's settings.
* :mod:`~repro.matching.generic` — a simple backtracking matcher used as a
  correctness oracle and as the "generic framework" baseline of Section 2.2.
* :mod:`~repro.matching.parallel` — work partitioning of starting vertices
  over a persistent thread pool.
* :mod:`~repro.matching.process_shard` — the same partitioning over worker
  processes attached to a shared-memory CSR export (multi-core matching).
* :mod:`~repro.matching.shard_protocol` — the job/merge protocol both pools
  share, so thread and process execution stay semantically identical.
* :mod:`~repro.matching.solution_batch` — the columnar batch the whole
  result pipeline moves, and :mod:`~repro.matching.result_ring` — the
  shared-memory ring transporting it across process shards without
  pickling.
* :mod:`~repro.matching.region_arena` — the flat, pooled candidate-region
  storage the exploration pass writes and the explicit-stack
  :class:`~repro.matching.subgraph_search.SubgraphSearcher` enumerates
  (see ``docs/matching_core.md``).
"""

from repro.matching.config import MatchConfig
from repro.matching.region_arena import RegionArena
from repro.matching.solution_batch import SOLUTION_BATCH_SIZE, SolutionBatch
from repro.matching.turbo import (
    PreparedQuery,
    TurboMatcher,
    prepare_query,
    turbo_hom,
    turbo_hom_pp,
    turbo_iso,
)
from repro.matching.generic import GenericMatcher
from repro.matching.parallel import ParallelMatcher, ParallelStats
from repro.matching.process_shard import (
    ProcessShardPool,
    ShardTransportStats,
    ShardWorkerError,
)

__all__ = [
    "MatchConfig",
    "RegionArena",
    "SolutionBatch",
    "SOLUTION_BATCH_SIZE",
    "ShardTransportStats",
    "PreparedQuery",
    "TurboMatcher",
    "prepare_query",
    "turbo_iso",
    "turbo_hom",
    "turbo_hom_pp",
    "GenericMatcher",
    "ParallelMatcher",
    "ParallelStats",
    "ProcessShardPool",
    "ShardWorkerError",
]
