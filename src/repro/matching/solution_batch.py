"""Columnar solution batches: the matcher-level unit of result movement.

The enumeration core produces one :data:`~repro.matching.turbo.Solution`
(``List[int]``, query vertex index → data vertex id) at a time, but moving
results around one Python list at a time is exactly the per-tuple overhead
TurboHOM++ eliminates everywhere else.  A :class:`SolutionBatch` holds up to
:data:`SOLUTION_BATCH_SIZE` solutions **column-major**: one flat ``array('q')``
per query vertex, so

* appending a solution is ``width`` integer appends into flat arrays (no
  per-solution object allocation besides the arrays themselves),
* a batch crosses a thread queue as one object and a process boundary as one
  contiguous buffer copy per column (see
  :mod:`repro.matching.result_ring`), never as pickled per-solution lists,
* the engine layer can adopt the columns directly as the id columns of a
  :class:`~repro.sparql.binding_batch.BindingBatch` without copying.

Vertex ids are non-negative, so the full ``int64`` range below zero is free
for sentinels; batches produced by the matcher never contain negatives.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Sequence

#: Solutions per batch: large enough to amortize queue/ring traffic, small
#: enough to bound worker memory and cancellation latency inside one
#: combinatorial candidate region.  (Shared by every producer so thread and
#: process transports see identical batch shapes.)
SOLUTION_BATCH_SIZE = 256

#: Bytes per column slot (``array('q')`` / int64).
SLOT_BYTES = 8


class SolutionBatch:
    """A fixed-width, column-major batch of vertex-mapping solutions."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: Sequence[array], rows: int):
        #: One ``array('q')`` of length ``rows`` per query vertex.
        self.columns: List[array] = list(columns)
        #: Row count, held explicitly so zero-width batches (vertex-less
        #: queries) and wake tokens (``rows == 0``) stay representable.
        self.rows = rows

    # ------------------------------------------------------------ construction
    @staticmethod
    def collector(width: int) -> List[array]:
        """Fresh append targets for a batch under construction."""
        return [array("q") for _ in range(width)]

    @classmethod
    def empty(cls) -> "SolutionBatch":
        """A zero-row batch (used as a wake/control token by merge loops)."""
        return cls((), 0)

    # ---------------------------------------------------------------- geometry
    @property
    def width(self) -> int:
        return len(self.columns)

    @property
    def slots(self) -> int:
        """Total int64 slots the batch occupies (``rows * width``)."""
        return self.rows * len(self.columns)

    def __len__(self) -> int:
        return self.rows

    # ------------------------------------------------------------------ access
    def iter_rows(self) -> Iterator[List[int]]:
        """Yield each solution as the row-major ``List[int]`` form."""
        columns = self.columns
        if not columns:
            for _ in range(self.rows):
                yield []
            return
        for row in range(self.rows):
            yield [column[row] for column in columns]

    def head(self, count: int) -> "SolutionBatch":
        """The first ``count`` rows (used to honour result limits exactly)."""
        if count >= self.rows:
            return self
        return SolutionBatch([column[:count] for column in self.columns], max(0, count))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"SolutionBatch(width={self.width}, rows={self.rows})"
