"""The TurboISO / TurboHOM / TurboHOM++ matcher (Algorithm 1 driver).

:class:`TurboMatcher` ties together start-vertex selection, query-tree
construction, candidate-region exploration, matching-order determination and
subgraph search.  Its behaviour (isomorphism vs homomorphism, which
optimizations are active) is entirely determined by the
:class:`~repro.matching.config.MatchConfig` it is constructed with, so the
paper's systems are just three factory functions:

* :func:`turbo_iso` — subgraph isomorphism (TurboISO),
* :func:`turbo_hom` — e-graph homomorphism without the TurboHOM++
  optimizations (the "direct modification" of Section 2.2),
* :func:`turbo_hom_pp` — e-graph homomorphism with +INT, -NLF, -DEG, +REUSE.

The primitive API is the streaming generator :meth:`TurboMatcher.iter_match`:
solutions are produced one at a time straight out of the candidate-region
search, so consumers (engines, the parallel matcher, result limits) never
force a full result list into memory.  :meth:`match`, :meth:`count` and
:meth:`match_with_callback` are thin adapters over it, and
:meth:`iter_match_batches` groups the same stream into columnar
:class:`~repro.matching.solution_batch.SolutionBatch` objects for the
batch result pipeline (one flat array per query vertex instead of one list
per solution).

Per-query preparation (start-vertex selection, query-tree construction,
filter-requirement derivation, the shared ``+REUSE`` matching-order slot) is
factored into :func:`prepare_query` / :class:`PreparedQuery` so the engine's
plan cache can run it once per *distinct* query and hand the precompiled
state to every later execution; ``iter_match(..., prepared=...)`` then goes
straight to candidate-region exploration.

The matcher operates on vertex mappings only; edge-label mappings for
predicate variables (the ``Me`` of Definition 2) are enumerated by the
caller via :meth:`LabeledGraph.edge_labels_between`, which keeps the hot
search loop free of per-edge bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.matching.candidate_region import (
    VertexPredicate,
    explore_candidate_region,
    query_requirements,
)
from repro.matching.config import MatchConfig
from repro.matching.filters import VertexRequirements, passes_filters, vertex_requirements
from repro.matching.matching_order import OrderCache, determine_matching_order
from repro.matching.query_tree import QueryTree, write_query_tree
from repro.matching.solution_batch import SOLUTION_BATCH_SIZE, SolutionBatch
from repro.matching.start_vertex import candidate_start_vertices, choose_start
from repro.matching.subgraph_search import SearchStatistics, subgraph_search_iter

#: A solution maps query vertex index -> data vertex id.
Solution = List[int]


@dataclass
class PreparedQuery:
    """Precompiled per-query matching state (everything before Algorithm 1's
    start-vertex loop).

    All fields depend only on the immutable data graph, the query graph and
    the :class:`MatchConfig`, so a prepared query can be cached and reused by
    every execution of the same query.  ``order_cache`` is deliberately
    mutable: under ``+REUSE`` the first region's matching order is stored
    there and reused across regions *and* across executions.
    """

    query: QueryGraph
    start_vertex: int
    start_candidates: List[int]
    #: Query tree rooted at ``start_vertex`` (None for single-vertex queries).
    tree: Optional[QueryTree]
    #: Per-vertex degree/NLF requirements for candidate-region exploration.
    requirements: Dict[int, VertexRequirements]
    #: Shared ``+REUSE`` matching-order slot.
    order_cache: OrderCache


def prepare_query(
    graph: LabeledGraph,
    query: QueryGraph,
    config: MatchConfig,
) -> PreparedQuery:
    """Run all per-query preparation of a connected query once.

    For single-vertex queries the candidate list is already degree/NLF
    filtered (when the configuration enables those filters), mirroring what
    :func:`~repro.matching.start_vertex.choose_start` does for structural
    queries.
    """
    if query.vertex_count() == 1 and query.edge_count() == 0:
        candidates = candidate_start_vertices(graph, query, 0)
        if config.use_degree_filter or config.use_nlf_filter:
            requirements = vertex_requirements(query, 0, config.homomorphism)
            candidates = [
                v
                for v in candidates
                if passes_filters(
                    graph,
                    query,
                    0,
                    v,
                    config.homomorphism,
                    config.use_degree_filter,
                    config.use_nlf_filter,
                    requirements,
                )
            ]
        return PreparedQuery(query, 0, candidates, None, {}, OrderCache())
    selection = choose_start(graph, query, config)
    tree = write_query_tree(query, selection.vertex)
    requirements = query_requirements(query, config)
    return PreparedQuery(
        query, selection.vertex, selection.candidates, tree, requirements, OrderCache()
    )


@dataclass
class MatchStatistics:
    """Aggregated profiling counters for one match call."""

    start_vertices: int = 0
    candidate_regions: int = 0
    region_vertices: int = 0
    solutions: int = 0
    search: SearchStatistics = field(default_factory=SearchStatistics)


class TurboMatcher:
    """Candidate-region subgraph matcher over a :class:`LabeledGraph`."""

    def __init__(self, graph: LabeledGraph, config: Optional[MatchConfig] = None):
        self.graph = graph
        self.config = config if config is not None else MatchConfig.turbo_hom_pp()
        self.last_statistics = MatchStatistics()

    # -------------------------------------------------------------- main API
    def iter_match(
        self,
        query: QueryGraph,
        vertex_predicates: Optional[Dict[int, VertexPredicate]] = None,
        max_results: Optional[int] = None,
        prepared: Optional[PreparedQuery] = None,
    ) -> Iterator[Solution]:
        """Stream all vertex mappings of ``query`` in the data graph.

        Solutions are yielded as they are found; ``max_results`` (or the
        config's ``max_results``) stops the enumeration after that many
        solutions.  ``prepared`` supplies precompiled per-query state (from
        :func:`prepare_query`, typically via a cached query plan) so the
        start-vertex selection and query-tree construction are skipped.
        ``self.last_statistics`` reflects the work done so far at any point
        of the iteration.
        """
        limit = max_results if max_results is not None else self.config.max_results
        if limit is not None and limit <= 0:
            return
        produced = 0
        for mapping in self._iter_solutions(query, vertex_predicates or {}, prepared):
            produced += 1
            yield mapping
            if limit is not None and produced >= limit:
                return

    def iter_match_batches(
        self,
        query: QueryGraph,
        vertex_predicates: Optional[Dict[int, VertexPredicate]] = None,
        max_results: Optional[int] = None,
        prepared: Optional[PreparedQuery] = None,
        batch_size: int = SOLUTION_BATCH_SIZE,
    ) -> Iterator[SolutionBatch]:
        """Stream solutions grouped into columnar batches.

        Same semantics, limits and statistics as :meth:`iter_match`; the
        only difference is the shape of the stream — solutions are packed
        column-major so the engine's batch pipeline (and the shard
        transports) move flat arrays instead of per-solution lists.
        """
        width = query.vertex_count()
        columns = SolutionBatch.collector(width)
        rows = 0
        for solution in self.iter_match(query, vertex_predicates, max_results, prepared):
            for index in range(width):
                columns[index].append(solution[index])
            rows += 1
            if rows >= batch_size:
                yield SolutionBatch(columns, rows)
                columns = SolutionBatch.collector(width)
                rows = 0
        if rows:
            yield SolutionBatch(columns, rows)

    def match(
        self,
        query: QueryGraph,
        vertex_predicates: Optional[Dict[int, VertexPredicate]] = None,
        max_results: Optional[int] = None,
    ) -> List[Solution]:
        """Return all vertex mappings of ``query`` in the data graph."""
        return list(self.iter_match(query, vertex_predicates, max_results))

    def count(self, query: QueryGraph, vertex_predicates=None) -> int:
        """Count solutions without materializing them."""
        counter = 0
        for _ in self._iter_solutions(query, vertex_predicates or {}):
            counter += 1
        return counter

    def match_with_callback(
        self,
        query: QueryGraph,
        on_solution: Callable[[Solution], bool],
        vertex_predicates: Optional[Dict[int, VertexPredicate]] = None,
    ) -> MatchStatistics:
        """Enumerate solutions through a callback (return False to stop)."""
        for mapping in self._iter_solutions(query, vertex_predicates or {}):
            if not on_solution(mapping):
                break
        return self.last_statistics

    # ----------------------------------------------------------------- core
    def _iter_solutions(
        self,
        query: QueryGraph,
        predicates: Dict[int, VertexPredicate],
        prepared: Optional[PreparedQuery] = None,
    ) -> Iterator[Solution]:
        """Generator core shared by every public entry point."""
        stats = MatchStatistics()
        self.last_statistics = stats

        if query.vertex_count() == 0:
            stats.solutions += 1
            yield []
            return
        if not query.is_connected():
            raise ValueError(
                "TurboMatcher requires a connected query graph; split disconnected "
                "patterns into components (the engine layer does this automatically)"
            )
        if prepared is None:
            prepared = prepare_query(self.graph, query, self.config)
        if query.vertex_count() == 1 and query.edge_count() == 0:
            yield from self._iter_single_vertex(query, predicates, stats, prepared)
            return

        start_vertex = prepared.start_vertex
        tree = prepared.tree
        requirements = prepared.requirements
        root_predicate = predicates.get(start_vertex)
        stats.start_vertices = len(prepared.start_candidates)
        assert tree is not None

        order_cache = prepared.order_cache if self.config.reuse_matching_order else None
        for start_data_vertex in prepared.start_candidates:
            if root_predicate is not None and not root_predicate(start_data_vertex):
                continue
            region = explore_candidate_region(
                self.graph, query, tree, self.config, start_data_vertex, predicates,
                requirements,
            )
            if region is None:
                continue
            stats.candidate_regions += 1
            stats.region_vertices += region.size()
            order = determine_matching_order(tree, region, order_cache)
            for mapping in subgraph_search_iter(
                self.graph, query, tree, region, order, self.config, stats.search
            ):
                stats.solutions += 1
                yield mapping

    # ---------------------------------------------------------- special case
    def _iter_single_vertex(
        self,
        query: QueryGraph,
        predicates: Dict[int, VertexPredicate],
        stats: MatchStatistics,
        prepared: PreparedQuery,
    ) -> Iterator[Solution]:
        """Algorithm 1, lines 2–4: queries with a single vertex and no edge.

        The degree/NLF filters were already applied by :func:`prepare_query`,
        so only the runtime vertex predicates remain.
        """
        predicate = predicates.get(0)
        for data_vertex in prepared.start_candidates:
            if predicate is not None and not predicate(data_vertex):
                continue
            stats.solutions += 1
            yield [data_vertex]


# ---------------------------------------------------------------- factories
def turbo_iso(graph: LabeledGraph) -> TurboMatcher:
    """TurboISO: subgraph isomorphism with the original filters."""
    return TurboMatcher(graph, MatchConfig.isomorphism())


def turbo_hom(graph: LabeledGraph) -> TurboMatcher:
    """TurboHOM: e-graph homomorphism, no TurboHOM++ optimizations."""
    return TurboMatcher(graph, MatchConfig.homomorphism_baseline())


def turbo_hom_pp(graph: LabeledGraph, config: Optional[MatchConfig] = None) -> TurboMatcher:
    """TurboHOM++: e-graph homomorphism with all four optimizations."""
    return TurboMatcher(graph, config if config is not None else MatchConfig.turbo_hom_pp())
