"""The TurboISO / TurboHOM / TurboHOM++ matcher (Algorithm 1 driver).

:class:`TurboMatcher` ties together start-vertex selection, query-tree
construction, candidate-region exploration, matching-order determination and
subgraph search.  Its behaviour (isomorphism vs homomorphism, which
optimizations are active) is entirely determined by the
:class:`~repro.matching.config.MatchConfig` it is constructed with, so the
paper's systems are just three factory functions:

* :func:`turbo_iso` — subgraph isomorphism (TurboISO),
* :func:`turbo_hom` — e-graph homomorphism without the TurboHOM++
  optimizations (the "direct modification" of Section 2.2),
* :func:`turbo_hom_pp` — e-graph homomorphism with +INT, -NLF, -DEG, +REUSE.

The primitive API is :meth:`TurboMatcher.iter_match_batches`: candidate
regions are explored into a pooled, reusable
:class:`~repro.matching.region_arena.RegionArena` and enumerated by the
explicit-stack :class:`~repro.matching.subgraph_search.SubgraphSearcher`,
which writes matched vertices **directly into the columnar batch being
built** — no per-solution list, no generator frame per depth.
:meth:`iter_match` is the row-iterating adapter over that stream, and
:meth:`match`, :meth:`count`, :meth:`match_with_callback` are thin
conveniences on top.

Per-query preparation (start-vertex selection, query-tree construction,
filter-requirement derivation, the shared ``+REUSE`` matching-order slot) is
factored into :func:`prepare_query` / :class:`PreparedQuery` so the engine's
plan cache can run it once per *distinct* query and hand the precompiled
state to every later execution; ``iter_match(..., prepared=...)`` then goes
straight to candidate-region exploration.  On top of that, a caller may pass
a **region cache** (see :mod:`repro.engine.region_cache`) plus a stable
``region_key``: explored regions are snapshotted under
``(region_key, start_data_vertex)`` and repeated executions skip exploration
entirely (``MatchStatistics.regions_reused`` counts the hits).

The matcher operates on vertex mappings only; edge-label mappings for
predicate variables (the ``Me`` of Definition 2) are enumerated by the
caller via :meth:`LabeledGraph.edge_labels_between`, which keeps the hot
search loop free of per-edge bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.matching.candidate_region import (
    VertexPredicate,
    explore_candidate_region,
    query_requirements,
)
from repro.matching.config import MatchConfig
from repro.matching.filters import VertexRequirements, passes_filters, vertex_requirements
from repro.matching.matching_order import OrderCache, determine_matching_order
from repro.matching.query_tree import QueryTree, write_query_tree
from repro.matching.region_arena import EMPTY_REGION, acquire_arena, release_arena
from repro.matching.solution_batch import SOLUTION_BATCH_SIZE, SolutionBatch
from repro.matching.start_vertex import candidate_start_vertices, choose_start
from repro.matching.subgraph_search import (
    SearchStatistics,
    acquire_searcher,
    release_searcher,
)

#: A solution maps query vertex index -> data vertex id.
Solution = List[int]


@dataclass
class PreparedQuery:
    """Precompiled per-query matching state (everything before Algorithm 1's
    start-vertex loop).

    All fields depend only on the immutable data graph, the query graph and
    the :class:`MatchConfig`, so a prepared query can be cached and reused by
    every execution of the same query.  ``order_cache`` is deliberately
    mutable: under ``+REUSE`` the first region's matching order is stored
    there and reused across regions *and* across executions.
    """

    query: QueryGraph
    start_vertex: int
    start_candidates: List[int]
    #: Query tree rooted at ``start_vertex`` (None for single-vertex queries).
    tree: Optional[QueryTree]
    #: Per-vertex degree/NLF requirements for candidate-region exploration.
    requirements: Dict[int, VertexRequirements]
    #: Shared ``+REUSE`` matching-order slot.
    order_cache: OrderCache


def prepare_query(
    graph: LabeledGraph,
    query: QueryGraph,
    config: MatchConfig,
) -> PreparedQuery:
    """Run all per-query preparation of a connected query once.

    For single-vertex queries the candidate list is already degree/NLF
    filtered (when the configuration enables those filters), mirroring what
    :func:`~repro.matching.start_vertex.choose_start` does for structural
    queries.
    """
    if query.vertex_count() == 1 and query.edge_count() == 0:
        candidates = candidate_start_vertices(graph, query, 0)
        if config.use_degree_filter or config.use_nlf_filter:
            requirements = vertex_requirements(query, 0, config.homomorphism)
            candidates = [
                v
                for v in candidates
                if passes_filters(
                    graph,
                    query,
                    0,
                    v,
                    config.homomorphism,
                    config.use_degree_filter,
                    config.use_nlf_filter,
                    requirements,
                )
            ]
        return PreparedQuery(query, 0, candidates, None, {}, OrderCache())
    selection = choose_start(graph, query, config)
    tree = write_query_tree(query, selection.vertex)
    requirements = query_requirements(query, config)
    return PreparedQuery(
        query, selection.vertex, selection.candidates, tree, requirements, OrderCache()
    )


@dataclass
class MatchStatistics:
    """Aggregated profiling counters for one match call."""

    start_vertices: int = 0
    candidate_regions: int = 0
    region_vertices: int = 0
    solutions: int = 0
    #: Candidate regions served from a region cache instead of being
    #: re-explored (the ``+REUSE``-across-queries analogue).
    regions_reused: int = 0
    search: SearchStatistics = field(default_factory=SearchStatistics)


class TurboMatcher:
    """Candidate-region subgraph matcher over a :class:`LabeledGraph`."""

    def __init__(self, graph: LabeledGraph, config: Optional[MatchConfig] = None):
        self.graph = graph
        self.config = config if config is not None else MatchConfig.turbo_hom_pp()
        self.last_statistics = MatchStatistics()

    # -------------------------------------------------------------- main API
    def iter_match_batches(
        self,
        query: QueryGraph,
        vertex_predicates: Optional[Dict[int, VertexPredicate]] = None,
        max_results: Optional[int] = None,
        prepared: Optional[PreparedQuery] = None,
        batch_size: int = SOLUTION_BATCH_SIZE,
        region_cache=None,
        region_key=None,
    ) -> Iterator[SolutionBatch]:
        """Stream solutions as columnar batches straight off the search core.

        The primitive entry point: solutions are packed column-major as the
        explicit-stack searcher produces them, so the engine's batch
        pipeline (and the shard transports) move flat arrays that were never
        row-materialized.  ``max_results`` (or the config's ``max_results``)
        stops enumeration after exactly that many solutions.  ``prepared``
        supplies precompiled per-query state (from :func:`prepare_query`,
        typically via a cached query plan).  ``region_cache``/``region_key``
        enable cross-query candidate-region reuse: ``region_key`` must
        uniquely identify (query, config) — the engine passes
        ``(plan fingerprint, alternative, component)``.
        ``self.last_statistics`` reflects the work done so far at any point
        of the iteration.
        """
        limit = max_results if max_results is not None else self.config.max_results
        if limit is not None and limit <= 0:
            return
        stats = MatchStatistics()
        self.last_statistics = stats
        predicates = vertex_predicates or {}

        if query.vertex_count() == 0:
            stats.solutions += 1
            yield SolutionBatch((), 1)
            return
        if not query.is_connected():
            raise ValueError(
                "TurboMatcher requires a connected query graph; split disconnected "
                "patterns into components (the engine layer does this automatically)"
            )
        if prepared is None:
            prepared = prepare_query(self.graph, query, self.config)
        if query.vertex_count() == 1 and query.edge_count() == 0:
            yield from self._iter_single_vertex_batches(
                predicates, stats, prepared, limit, batch_size
            )
            return

        tree = prepared.tree
        requirements = prepared.requirements
        root_predicate = predicates.get(prepared.start_vertex)
        stats.start_vertices = len(prepared.start_candidates)
        assert tree is not None

        order_cache = prepared.order_cache if self.config.reuse_matching_order else None
        caching = region_cache is not None and region_key is not None
        width = query.vertex_count()
        graph = self.graph
        config = self.config

        arena = acquire_arena()
        searcher = acquire_searcher()
        try:
            columns = SolutionBatch.collector(width)
            rows = 0
            produced = 0
            for start_data_vertex in prepared.start_candidates:
                if root_predicate is not None and not root_predicate(start_data_vertex):
                    continue
                region = None
                if caching:
                    cached = region_cache.lookup((region_key, start_data_vertex))
                    if cached is not None:
                        stats.regions_reused += 1
                        region = None if cached is EMPTY_REGION else cached
                    else:
                        region = explore_candidate_region(
                            graph, query, tree, config, start_data_vertex,
                            predicates, requirements, arena,
                        )
                        region_cache.store(
                            (region_key, start_data_vertex),
                            EMPTY_REGION if region is None else region.snapshot(),
                        )
                    if region is None:
                        continue
                else:
                    region = explore_candidate_region(
                        graph, query, tree, config, start_data_vertex,
                        predicates, requirements, arena,
                    )
                    if region is None:
                        continue
                stats.candidate_regions += 1
                stats.region_vertices += region.size()
                order = determine_matching_order(tree, region, order_cache)
                searcher.reset(graph, query, tree, region, order, config, stats.search)
                while not searcher.exhausted:
                    budget = batch_size - rows
                    if limit is not None:
                        remaining = limit - produced
                        if remaining < budget:
                            budget = remaining
                    appended = searcher.fill(columns, budget)
                    rows += appended
                    produced += appended
                    stats.solutions += appended
                    if rows >= batch_size or (limit is not None and produced >= limit):
                        if rows:
                            yield SolutionBatch(columns, rows)
                            columns = SolutionBatch.collector(width)
                            rows = 0
                        if limit is not None and produced >= limit:
                            return
            if rows:
                yield SolutionBatch(columns, rows)
        finally:
            release_arena(arena)
            release_searcher(searcher)

    def iter_match(
        self,
        query: QueryGraph,
        vertex_predicates: Optional[Dict[int, VertexPredicate]] = None,
        max_results: Optional[int] = None,
        prepared: Optional[PreparedQuery] = None,
        region_cache=None,
        region_key=None,
        batch_size: int = SOLUTION_BATCH_SIZE,
    ) -> Iterator[Solution]:
        """Stream all vertex mappings one at a time (row adapter).

        Same semantics, limits and statistics as :meth:`iter_match_batches`;
        each yielded list is a fresh row the consumer may keep.  Solutions
        surface in ``batch_size`` groups — pass ``batch_size=1`` when the
        consumer may stop mid-stream and read-ahead work must not happen.
        """
        for batch in self.iter_match_batches(
            query, vertex_predicates, max_results, prepared, batch_size,
            region_cache=region_cache, region_key=region_key,
        ):
            yield from batch.iter_rows()

    def match(
        self,
        query: QueryGraph,
        vertex_predicates: Optional[Dict[int, VertexPredicate]] = None,
        max_results: Optional[int] = None,
    ) -> List[Solution]:
        """Return all vertex mappings of ``query`` in the data graph."""
        return list(self.iter_match(query, vertex_predicates, max_results))

    def count(self, query: QueryGraph, vertex_predicates=None) -> int:
        """Count solutions without materializing them (or their rows)."""
        counter = 0
        for batch in self.iter_match_batches(query, vertex_predicates):
            counter += batch.rows
        return counter

    def match_with_callback(
        self,
        query: QueryGraph,
        on_solution: Callable[[Solution], bool],
        vertex_predicates: Optional[Dict[int, VertexPredicate]] = None,
    ) -> MatchStatistics:
        """Enumerate solutions through a callback (return False to stop).

        Solutions surface one at a time (``batch_size=1``), so a False
        return stops the search exactly there — no batch of read-ahead
        enumeration behind the caller's back.
        """
        for mapping in self.iter_match(query, vertex_predicates, batch_size=1):
            if not on_solution(mapping):
                break
        return self.last_statistics

    # ---------------------------------------------------------- special case
    def _iter_single_vertex_batches(
        self,
        predicates: Dict[int, VertexPredicate],
        stats: MatchStatistics,
        prepared: PreparedQuery,
        limit: Optional[int],
        batch_size: int,
    ) -> Iterator[SolutionBatch]:
        """Algorithm 1, lines 2–4: queries with a single vertex and no edge.

        The degree/NLF filters were already applied by :func:`prepare_query`,
        so only the runtime vertex predicates remain.
        """
        predicate = predicates.get(0)
        columns = SolutionBatch.collector(1)
        rows = 0
        produced = 0
        for data_vertex in prepared.start_candidates:
            if predicate is not None and not predicate(data_vertex):
                continue
            columns[0].append(data_vertex)
            rows += 1
            produced += 1
            stats.solutions += 1
            if rows >= batch_size:
                yield SolutionBatch(columns, rows)
                columns = SolutionBatch.collector(1)
                rows = 0
            if limit is not None and produced >= limit:
                break
        if rows:
            yield SolutionBatch(columns, rows)


# ---------------------------------------------------------------- factories
def turbo_iso(graph: LabeledGraph) -> TurboMatcher:
    """TurboISO: subgraph isomorphism with the original filters."""
    return TurboMatcher(graph, MatchConfig.isomorphism())


def turbo_hom(graph: LabeledGraph) -> TurboMatcher:
    """TurboHOM: e-graph homomorphism, no TurboHOM++ optimizations."""
    return TurboMatcher(graph, MatchConfig.homomorphism_baseline())


def turbo_hom_pp(graph: LabeledGraph, config: Optional[MatchConfig] = None) -> TurboMatcher:
    """TurboHOM++: e-graph homomorphism with all four optimizations."""
    return TurboMatcher(graph, config if config is not None else MatchConfig.turbo_hom_pp())
