"""``DetermineMatchingOrder`` (Algorithm 1, line 11).

Given a candidate region, every root-to-leaf query path of the query tree is
scored by the number of candidate data vertices it touches in the region, and
paths are processed in ascending order of that score.  The matching order is
the concatenation of the paths' vertices with duplicates removed (the root
first), which reproduces the paper's Figure 2 example: for ``CR(v0)`` the
ordered path list is ``[u0.u3, u0.u1, u0.u2]`` giving the matching order
``<u0, u3, u1, u2>``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.matching.candidate_region import CandidateRegion
from repro.matching.query_tree import QueryTree


def path_cardinality(region: CandidateRegion, path: List[int]) -> int:
    """Number of candidate vertices a query path touches in the region."""
    return sum(region.count(vertex) for vertex in path[1:])


def determine_matching_order(tree: QueryTree, region: CandidateRegion) -> List[int]:
    """Compute the matching order for one candidate region."""
    scored_paths: List[Tuple[int, int, List[int]]] = []
    for index, path in enumerate(tree.paths()):
        scored_paths.append((path_cardinality(region, path), index, path))
    scored_paths.sort(key=lambda item: (item[0], item[1]))

    order: List[int] = [tree.root]
    seen = {tree.root}
    for _, _, path in scored_paths:
        for vertex in path[1:]:
            if vertex not in seen:
                seen.add(vertex)
                order.append(vertex)
    return order


def default_matching_order(tree: QueryTree) -> List[int]:
    """BFS order fallback used when a query has no candidate region yet."""
    return list(tree.bfs_order)
