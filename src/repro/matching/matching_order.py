"""``DetermineMatchingOrder`` (Algorithm 1, line 11).

Given a candidate region, every root-to-leaf query path of the query tree is
scored by the number of candidate data vertices it touches in the region, and
paths are processed in ascending order of that score.  The matching order is
the concatenation of the paths' vertices with duplicates removed (the root
first), which reproduces the paper's Figure 2 example: for ``CR(v0)`` the
ordered path list is ``[u0.u3, u0.u1, u0.u2]`` giving the matching order
``<u0, u3, u1, u2>``.

With the ``+REUSE`` optimization the order computed for the first candidate
region is reused for every other region.  :class:`OrderCache` is the carrier
for that reuse: callers hand the same cache to every
:func:`determine_matching_order` call, and — because the query plan layer
stores the cache inside a compiled :class:`~repro.engine.plan.QueryPlan` —
the order also survives across repeated executions of the same query, so a
warm plan-cache run never recomputes it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.matching.query_tree import QueryTree
from repro.matching.region_arena import RegionArena


class OrderCache:
    """Mutable holder for a matching order shared across candidate regions.

    The first :func:`determine_matching_order` call fills it; later calls
    (including calls from other worker threads or later executions of a
    cached plan) return the stored order without rescoring paths.  Filling
    the slot is idempotent, so the benign race between parallel workers is
    harmless.
    """

    __slots__ = ("order",)

    def __init__(self, order: Optional[List[int]] = None):
        self.order = order


def path_cardinality(region: RegionArena, path: List[int]) -> int:
    """Number of candidate vertices a query path touches in the region.

    Reads the arena's flat per-query-vertex count array — no dict walk.
    """
    counts = region.counts
    width = region.width
    total = 0
    for vertex in path[1:]:
        if vertex < width:
            total += counts[vertex]
    return total


def determine_matching_order(
    tree: QueryTree,
    region: RegionArena,
    cache: Optional[OrderCache] = None,
) -> List[int]:
    """Compute the matching order for one candidate region.

    When ``cache`` is given and already holds an order (``+REUSE``), that
    precompiled order is returned without rescoring; otherwise the computed
    order is stored into the cache for subsequent regions and executions.
    """
    if cache is not None and cache.order is not None:
        return cache.order
    scored_paths: List[Tuple[int, int, List[int]]] = []
    for index, path in enumerate(tree.paths()):
        scored_paths.append((path_cardinality(region, path), index, path))
    scored_paths.sort(key=lambda item: (item[0], item[1]))

    order: List[int] = [tree.root]
    seen = {tree.root}
    for _, _, path in scored_paths:
        for vertex in path[1:]:
            if vertex not in seen:
                seen.add(vertex)
                order.append(vertex)
    if cache is not None:
        cache.order = order
    return order


def default_matching_order(tree: QueryTree) -> List[int]:
    """BFS order fallback used when a query has no candidate region yet."""
    return list(tree.bfs_order)
