"""``ExploreCandidateRegion`` (Algorithm 1, line 9).

A candidate region is the portion of the data graph reachable from one start
data vertex by following the query tree's topology.  The structure mirrors
``CR(u, v)`` of Algorithm 2: for each non-root query vertex ``u`` and each
data vertex ``v`` matched to ``u``'s parent, the sorted list of candidate
data vertices for ``u``.

Exploration prunes eagerly: a candidate survives only if every child query
vertex below it also has at least one candidate, so the region sizes reported
to ``DetermineMatchingOrder`` are close to the true selectivities — this is
the property that makes TurboISO's matching orders accurate.

Adjacency is consumed as zero-copy CSR windows
(:meth:`LabeledGraph.neighbors_by_type_window`), and the degree / NLF filter
requirements are precomputed once per query (:func:`query_requirements`)
instead of once per candidate region or per candidate.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph, QueryVertex
from repro.matching.config import MatchConfig
from repro.matching.filters import VertexRequirements, passes_filters, vertex_requirements
from repro.matching.query_tree import QueryTree, TreeEdge
from repro.utils.intersect import Window

#: Optional per-query-vertex data-vertex predicate (inexpensive FILTER push-down).
VertexPredicate = Callable[[int], bool]


class CandidateRegion:
    """Candidate vertices grouped by (query vertex, parent data vertex)."""

    def __init__(self, start_query_vertex: int, start_data_vertex: int):
        self.start_query_vertex = start_query_vertex
        self.start_data_vertex = start_data_vertex
        self._candidates: Dict[Tuple[int, int], List[int]] = {}
        self._counts: Dict[int, int] = {}

    def set(self, query_vertex: int, parent_data_vertex: int, candidates: List[int]) -> None:
        """Record the candidate list for (query vertex, parent data vertex).

        Idempotent: re-recording the same key (which happens when memoized
        sub-explorations are reused) does not double-count the region size.
        """
        key = (query_vertex, parent_data_vertex)
        if key in self._candidates:
            return
        self._candidates[key] = candidates
        self._counts[query_vertex] = self._counts.get(query_vertex, 0) + len(candidates)

    def get(self, query_vertex: int, parent_data_vertex: int) -> List[int]:
        """Candidate list for (query vertex, parent data vertex)."""
        return self._candidates.get((query_vertex, parent_data_vertex), [])

    def count(self, query_vertex: int) -> int:
        """Total number of candidate vertices recorded for a query vertex."""
        return self._counts.get(query_vertex, 0)

    def size(self) -> int:
        """Total number of candidate vertices in the region (all query vertices)."""
        return sum(self._counts.values())

    def __bool__(self) -> bool:
        return True


def _edge_label_for_matching(edge_label: Optional[int]) -> Optional[int]:
    """Map a query edge label to the adjacency look-up argument.

    ``None`` (predicate variable) stays ``None`` = any edge label;
    non-negative ids are used as-is; the IMPOSSIBLE sentinel (-1) is also
    passed through, where it simply finds no adjacency group.
    """
    return edge_label


def _child_candidate_window(
    graph: LabeledGraph,
    query: QueryGraph,
    tree_edge: TreeEdge,
    parent_data_vertex: int,
) -> Window:
    """Adjacent data vertices satisfying the child's labels, as a window."""
    child_vertex: QueryVertex = query.vertices[tree_edge.child]
    labels: FrozenSet[int] = child_vertex.labels
    return graph.neighbors_by_type_window(
        parent_data_vertex,
        _edge_label_for_matching(tree_edge.edge.label),
        labels,
        outgoing=tree_edge.outgoing_from_parent,
    )


def query_requirements(
    query: QueryGraph, config: MatchConfig
) -> Dict[int, VertexRequirements]:
    """Precompute the filter requirements of every query vertex.

    Computed once per query (empty when both filters are off) and passed to
    :func:`explore_candidate_region` for every start data vertex, so the
    requirement derivation never runs inside the per-region hot path.
    """
    if not (config.use_degree_filter or config.use_nlf_filter):
        return {}
    return {
        vertex: vertex_requirements(query, vertex, config.homomorphism)
        for vertex in range(query.vertex_count())
    }


def explore_candidate_region(
    graph: LabeledGraph,
    query: QueryGraph,
    tree: QueryTree,
    config: MatchConfig,
    start_data_vertex: int,
    vertex_predicates: Optional[Dict[int, VertexPredicate]] = None,
    requirements: Optional[Dict[int, VertexRequirements]] = None,
) -> Optional[CandidateRegion]:
    """Explore the candidate region rooted at ``start_data_vertex``.

    Returns ``None`` when the region is empty (some query vertex has no
    candidate anywhere below the start vertex), matching the "if CR is not
    empty" test of Algorithm 1.
    """
    predicates = vertex_predicates or {}
    region = CandidateRegion(tree.root, start_data_vertex)
    homomorphism = config.homomorphism
    use_filters = config.use_degree_filter or config.use_nlf_filter
    if requirements is None:
        requirements = query_requirements(query, config)
    # Memoize (query vertex, parent data vertex) explorations — a data vertex
    # reachable through several branches is expanded only once.  Injectivity
    # is not enforced during exploration (it would make candidate lists
    # path-dependent and lose solutions for the shared CR(u, v) structure);
    # SubgraphSearch applies the injectivity test exhaustively.
    memo: Dict[Tuple[int, int], Optional[List[int]]] = {}

    def explore(query_vertex: int, data_vertex: int) -> bool:
        """Explore all children of ``query_vertex`` below ``data_vertex``."""
        for child in tree.children.get(query_vertex, []):
            key = (child, data_vertex)
            if key in memo:
                cached = memo[key]
                if cached is None:
                    return False
                region.set(child, data_vertex, cached)
                continue
            tree_edge = tree.tree_edges[child]
            base, lo, hi = _child_candidate_window(graph, query, tree_edge, data_vertex)
            child_vertex = query.vertices[child]
            pinned = child_vertex.vertex_id
            child_predicate = predicates.get(child)
            child_requirements = requirements.get(child)
            valid: List[int] = []
            for index in range(lo, hi):
                candidate = base[index]
                if pinned is not None and candidate != pinned:
                    continue
                if child_predicate is not None and not child_predicate(candidate):
                    continue
                if use_filters and not passes_filters(
                    graph,
                    query,
                    child,
                    candidate,
                    homomorphism,
                    config.use_degree_filter,
                    config.use_nlf_filter,
                    child_requirements,
                ):
                    continue
                if explore(child, candidate):
                    valid.append(candidate)
            memo[key] = valid if valid else None
            if not valid:
                return False
            region.set(child, data_vertex, valid)
        return True

    if not explore(tree.root, start_data_vertex):
        return None
    return region
