"""``ExploreCandidateRegion`` (Algorithm 1, line 9) over the region arena.

A candidate region is the portion of the data graph reachable from one start
data vertex by following the query tree's topology.  The structure mirrors
``CR(u, v)`` of Algorithm 2 — for each non-root query vertex ``u`` and each
data vertex ``v`` matched to ``u``'s parent, the sorted candidates for ``u``
— but lives in a flat, reusable :class:`~repro.matching.region_arena.
RegionArena` instead of a dict of lists, so steady-state exploration
allocates nothing (see ``docs/matching_core.md``).

Exploration prunes eagerly: a candidate survives only if every child query
vertex below it also has at least one candidate, so the region sizes reported
to ``DetermineMatchingOrder`` are close to the true selectivities — this is
the property that makes TurboISO's matching orders accurate.  The old
recursive dict-filling pass is now a single iterative loop over explicit
frames: each child's adjacency window is filtered straight into the arena
pool as a *tentative* span, candidates whose subtrees fail are compacted out
in place, and the surviving prefix is committed as the key's slice.  The
``(u, v)`` memo of the recursive version (a data vertex reachable through
several branches is expanded only once; injectivity is deliberately *not*
enforced here — SubgraphSearch applies it exhaustively) is the arena's
slices dict itself, with :data:`~repro.matching.region_arena.FAILED`
recording empty explorations.

Adjacency is consumed as zero-copy CSR windows
(:meth:`LabeledGraph.neighbors_by_type_window`), and the degree / NLF filter
requirements are precomputed once per query (:func:`query_requirements`)
instead of once per candidate region or per candidate.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.matching.config import MatchConfig
from repro.matching.filters import VertexRequirements, passes_filters, vertex_requirements
from repro.matching.query_tree import QueryTree
from repro.matching.region_arena import FAILED, RegionArena

#: Optional per-query-vertex data-vertex predicate (inexpensive FILTER push-down).
VertexPredicate = Callable[[int], bool]

#: ``frame[7]`` value meaning "no tentative span under validation" — the
#: frame is between children, ready to start the next one.
_IDLE = -1


def query_requirements(
    query: QueryGraph, config: MatchConfig
) -> Dict[int, VertexRequirements]:
    """Precompute the filter requirements of every query vertex.

    Computed once per query (empty when both filters are off) and passed to
    :func:`explore_candidate_region` for every start data vertex, so the
    requirement derivation never runs inside the per-region hot path.
    """
    if not (config.use_degree_filter or config.use_nlf_filter):
        return {}
    return {
        vertex: vertex_requirements(query, vertex, config.homomorphism)
        for vertex in range(query.vertex_count())
    }


def explore_candidate_region(
    graph: LabeledGraph,
    query: QueryGraph,
    tree: QueryTree,
    config: MatchConfig,
    start_data_vertex: int,
    vertex_predicates: Optional[Dict[int, VertexPredicate]] = None,
    requirements: Optional[Dict[int, VertexRequirements]] = None,
    arena: Optional[RegionArena] = None,
) -> Optional[RegionArena]:
    """Explore the candidate region rooted at ``start_data_vertex``.

    Returns ``None`` when the region is empty (some query vertex has no
    candidate anywhere below the start vertex), matching the "if CR is not
    empty" test of Algorithm 1.  ``arena`` supplies a reusable
    :class:`RegionArena` (typically from :func:`~repro.matching.
    region_arena.acquire_arena`); when omitted a fresh one is created.  The
    returned region *is* that arena — it stays valid until the next
    ``begin`` on it, i.e. until the caller explores its next region.
    """
    predicates = vertex_predicates or {}
    if requirements is None:
        requirements = query_requirements(query, config)
    if arena is None:
        arena = RegionArena()
    stride = graph.vertex_count
    arena.begin(tree.root, start_data_vertex, query.vertex_count(), stride)

    homomorphism = config.homomorphism
    use_degree = config.use_degree_filter
    use_nlf = config.use_nlf_filter
    use_filters = use_degree or use_nlf
    children_of = tree.children
    tree_edges = tree.tree_edges
    vertices = query.vertices
    slices = arena.slices
    pool = arena.pool
    neighbors_window = graph.neighbors_by_type_window

    # One frame per in-progress ``explore(query_vertex, data_vertex)`` of the
    # old recursion (bounded by the query-tree depth, not the data graph):
    #   [0] query_vertex   [1] data_vertex   [2] next child position
    #   [3] current child  [4] current child's slices key
    #   [5] tentative span lo (pool index)   [6] tentative span length
    #   [7] read cursor (_IDLE between children)   [8] write cursor
    # While a tentative span is validated, nested frames append their own
    # spans beyond it; failed candidates are compacted out in place (the
    # write cursor never passes the read cursor), and the surviving prefix
    # [lo, lo + write) is committed.
    frames: List[List[int]] = [
        [tree.root, start_data_vertex, 0, -1, -1, 0, 0, _IDLE, 0]
    ]
    returning = False
    result = True

    while frames:
        frame = frames[-1]
        if returning:
            returning = False
            # A nested frame validated pool[span_lo + read] with ``result``.
            read = frame[7]
            if result:
                span_lo = frame[5]
                write = frame[8]
                pool[span_lo + write] = pool[span_lo + read]
                frame[8] = write + 1
            frame[7] = read + 1

        query_vertex = frame[0]
        data_vertex = frame[1]
        outcome: Optional[bool] = None
        while outcome is None:
            read = frame[7]
            if read == _IDLE:
                # Between children: start the next one (or finish the frame).
                children = children_of[query_vertex]
                position = frame[2]
                if position >= len(children):
                    outcome = True
                    continue
                child = children[position]
                frame[2] = position + 1
                key = child * stride + data_vertex
                slot = slices.get(key)
                if slot is not None:
                    # Memoized: reachable through several branches, expanded once.
                    if slot < 0:
                        outcome = False
                    continue
                tree_edge = tree_edges[child]
                child_vertex = vertices[child]
                base, lo, hi = neighbors_window(
                    data_vertex,
                    tree_edge.edge.label,
                    child_vertex.labels,
                    outgoing=tree_edge.outgoing_from_parent,
                )
                pinned = child_vertex.vertex_id
                child_predicate = predicates.get(child)
                child_requirements = requirements.get(child)
                # Grow-only pool writes, inlined: one branch per candidate
                # instead of one method call (this is the innermost loop of
                # the whole exploration pass).
                span_lo = arena.tail
                tail = span_lo
                pool_len = len(pool)
                for index in range(lo, hi):
                    candidate = base[index]
                    if pinned is not None and candidate != pinned:
                        continue
                    if child_predicate is not None and not child_predicate(candidate):
                        continue
                    if use_filters and not passes_filters(
                        graph,
                        query,
                        child,
                        candidate,
                        homomorphism,
                        use_degree,
                        use_nlf,
                        child_requirements,
                    ):
                        continue
                    if tail < pool_len:
                        pool[tail] = candidate
                    else:
                        pool.append(candidate)
                        pool_len += 1
                    tail += 1
                arena.tail = tail
                span_len = tail - span_lo
                if span_len == 0:
                    slices[key] = FAILED
                    outcome = False
                    continue
                if not children_of[child]:
                    # Leaf child: every filtered candidate is final.
                    arena.commit(child, key, span_lo, span_lo + span_len)
                    continue
                frame[3] = child
                frame[4] = key
                frame[5] = span_lo
                frame[6] = span_len
                frame[7] = 0
                frame[8] = 0
                continue
            # Validating the current child's tentative span.
            if read >= frame[6]:
                child = frame[3]
                key = frame[4]
                write = frame[8]
                frame[7] = _IDLE
                if write == 0:
                    slices[key] = FAILED
                    outcome = False
                    continue
                span_lo = frame[5]
                arena.commit(child, key, span_lo, span_lo + write)
                continue
            # Descend into the subtree below pool[span_lo + read].
            frames.append(
                [frame[3], pool[frame[5] + read], 0, -1, -1, 0, 0, _IDLE, 0]
            )
            break
        if outcome is None:
            continue  # descended into a nested frame
        frames.pop()
        result = outcome
        returning = True

    if not result:
        return None
    return arena
