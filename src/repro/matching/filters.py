"""Degree and NLF (neighbourhood label frequency) filters.

Both filters exist in two flavours (Section 2.2, "Modifying TurboISO for
e-Graph Homomorphism"):

* **isomorphism** — distinct query vertices must map to distinct data
  vertices, so a data vertex needs one distinct data edge per distinct
  ``(direction, edge label, query neighbour)`` constraint (degree filter)
  and, for every distinct neighbour type of the query vertex, at least as
  many neighbours of that type as the query vertex has (NLF filter).
* **homomorphism** — several query vertices may share a data vertex, so the
  requirements weaken to "one data edge per distinct concrete edge label and
  direction" (degree) and "at least one neighbour per distinct neighbour
  type" (NLF).

Both requirements count *data edges the mapping forces to exist*, not query
edges.  The distinction matters on multigraph queries: two identical query
edges ``(u, l, w)`` are satisfied by the single data edge
``(M(u), l, M(w))``, and a predicate-variable edge can share the data edge
of any concrete-label edge between the same endpoints (the edge mapping
``Me`` of Definition 2 is not injective).  Requiring one data edge per query
edge over-prunes and loses solutions — that was the cause of the
isomorphism-mode solution loss pinned by
``tests/test_matching_regressions.py``.

Because the requirements depend only on the query, they are precomputed once
per query vertex (:func:`vertex_requirements`) and reused for every data
vertex tested, instead of being re-derived per candidate.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph

#: A neighbour type: (outgoing?, edge label, neighbour vertex label).
NeighborType = Tuple[bool, object, object]


class VertexRequirements:
    """Precomputed filter requirements of one query vertex.

    ``required_degree`` is the minimum total (in + out) data degree and
    ``neighbor_types`` the per-type minimum neighbour counts; both already
    reflect the semantics flavour (isomorphism vs homomorphism) they were
    computed for.
    """

    __slots__ = ("required_degree", "neighbor_types")

    def __init__(self, required_degree: int, neighbor_types: Dict[NeighborType, int]):
        self.required_degree = required_degree
        self.neighbor_types = neighbor_types


def query_neighbor_types(query: QueryGraph, vertex: int) -> Counter:
    """Count of *distinct query neighbours* per neighbour type.

    A neighbour with several labels contributes one entry per label; an
    unlabeled neighbour contributes a single ``(direction, edge label, None)``
    entry.  Counting distinct neighbour vertices (rather than edges) keeps the
    isomorphism NLF filter sound in the presence of duplicate query edges:
    only distinct query vertices are forced onto distinct data vertices.
    """
    seen = set()
    for edge in query.out_edges(vertex):
        labels = query.vertices[edge.target].labels or frozenset((None,))
        for label in labels:
            seen.add((True, edge.label, label, edge.target))
    for edge in query.in_edges(vertex):
        labels = query.vertices[edge.source].labels or frozenset((None,))
        for label in labels:
            seen.add((False, edge.label, label, edge.source))
    types: Counter = Counter()
    for direction, edge_label, label, _neighbor in seen:
        types[(direction, edge_label, label)] += 1
    return types


def required_degree(query: QueryGraph, vertex: int, homomorphism: bool) -> int:
    """Minimum data-vertex degree implied by the query vertex's edges.

    Counts the distinct data edges any solution must route through the
    matched data vertex.  Per direction:

    * isomorphism — distinct query neighbours map to distinct data vertices,
      so each ``(neighbour, concrete edge label)`` pair forces its own data
      edge; predicate-variable edges to a neighbour force one edge only when
      no concrete-label edge to the same neighbour already does.
    * homomorphism — neighbours may collapse onto one data vertex, so only
      distinct concrete edge labels force distinct data edges (plus one edge
      when every incident edge has a variable predicate).

    Self-loops count once per direction, mirroring how
    :meth:`LabeledGraph.degree` counts a data self-loop in both the outgoing
    and incoming adjacency.
    """
    total = 0
    for outgoing in (True, False):
        edges = query.out_edges(vertex) if outgoing else query.in_edges(vertex)
        if homomorphism:
            concrete: Set[int] = set()
            any_edge = False
            for edge in edges:
                any_edge = True
                if edge.label is not None:
                    concrete.add(edge.label)
            total += max(len(concrete), 1 if any_edge else 0)
        else:
            per_neighbor: Dict[int, Set[int]] = {}
            for edge in edges:
                neighbor = edge.target if outgoing else edge.source
                labels = per_neighbor.setdefault(neighbor, set())
                if edge.label is not None:
                    labels.add(edge.label)
            for labels in per_neighbor.values():
                total += max(len(labels), 1)
    return total


def vertex_requirements(
    query: QueryGraph, vertex: int, homomorphism: bool
) -> VertexRequirements:
    """Precompute the degree / NLF requirements of one query vertex."""
    types = query_neighbor_types(query, vertex)
    if homomorphism:
        neighbor_types = {neighbor_type: 1 for neighbor_type in types}
    else:
        neighbor_types = dict(types)
    return VertexRequirements(required_degree(query, vertex, homomorphism), neighbor_types)


def _data_neighbor_count(
    graph: LabeledGraph,
    data_vertex: int,
    neighbor_type: NeighborType,
) -> int:
    """Number of data neighbours matching one query neighbour type."""
    outgoing, edge_label, vertex_label = neighbor_type
    vertex_labels: FrozenSet[int] = (
        frozenset((vertex_label,)) if vertex_label is not None else frozenset()
    )
    return graph.count_neighbors_by_type(
        data_vertex,
        edge_label if edge_label is not None else None,
        vertex_labels,
        outgoing=outgoing,
    )


def degree_filter(
    graph: LabeledGraph,
    query: QueryGraph,
    query_vertex: int,
    data_vertex: int,
    homomorphism: bool,
    requirements: Optional[VertexRequirements] = None,
) -> bool:
    """Degree filter test: ``deg(v) >= required_degree(u)``."""
    if requirements is None:
        requirements = vertex_requirements(query, query_vertex, homomorphism)
    return graph.degree(data_vertex) >= requirements.required_degree


def nlf_filter(
    graph: LabeledGraph,
    query: QueryGraph,
    query_vertex: int,
    data_vertex: int,
    homomorphism: bool,
    requirements: Optional[VertexRequirements] = None,
) -> bool:
    """Neighbourhood label frequency filter test.

    Isomorphism: for every neighbour type the data vertex needs at least as
    many neighbours as the query vertex has distinct neighbours of that type.
    Homomorphism: at least one.
    """
    if requirements is None:
        requirements = vertex_requirements(query, query_vertex, homomorphism)
    for neighbor_type, needed in requirements.neighbor_types.items():
        if _data_neighbor_count(graph, data_vertex, neighbor_type) < needed:
            return False
    return True


def passes_filters(
    graph: LabeledGraph,
    query: QueryGraph,
    query_vertex: int,
    data_vertex: int,
    homomorphism: bool,
    use_degree: bool,
    use_nlf: bool,
    requirements: Optional[VertexRequirements] = None,
) -> bool:
    """Combined filter test honouring the -DEG / -NLF optimization switches."""
    if use_degree and not degree_filter(
        graph, query, query_vertex, data_vertex, homomorphism, requirements
    ):
        return False
    if use_nlf and not nlf_filter(
        graph, query, query_vertex, data_vertex, homomorphism, requirements
    ):
        return False
    return True
