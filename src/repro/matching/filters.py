"""Degree and NLF (neighbourhood label frequency) filters.

Both filters exist in two flavours (Section 2.2, "Modifying TurboISO for
e-Graph Homomorphism"):

* **isomorphism** — a data vertex must have at least as many neighbours as
  the query vertex (degree filter), and, for every distinct neighbour type of
  the query vertex, at least as many neighbours of that type (NLF filter),
  because distinct query vertices must map to distinct data vertices.
* **homomorphism** — several query vertices may share a data vertex, so the
  requirements weaken to "at least as many neighbours as *distinct neighbour
  types*" (degree) and "at least one neighbour per distinct neighbour type"
  (NLF).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Tuple

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph

#: A neighbour type: (outgoing?, edge label, neighbour vertex label).
NeighborType = Tuple[bool, object, object]


def query_neighbor_types(query: QueryGraph, vertex: int) -> Counter:
    """Count of *distinct query neighbours* per neighbour type.

    A neighbour with several labels contributes one entry per label; an
    unlabeled neighbour contributes a single ``(direction, edge label, None)``
    entry.  Counting distinct neighbour vertices (rather than edges) keeps the
    isomorphism NLF filter sound in the presence of duplicate query edges:
    only distinct query vertices are forced onto distinct data vertices.
    """
    seen = set()
    for edge in query.out_edges(vertex):
        labels = query.vertices[edge.target].labels or frozenset((None,))
        for label in labels:
            seen.add((True, edge.label, label, edge.target))
    for edge in query.in_edges(vertex):
        labels = query.vertices[edge.source].labels or frozenset((None,))
        for label in labels:
            seen.add((False, edge.label, label, edge.source))
    types: Counter = Counter()
    for direction, edge_label, label, _neighbor in seen:
        types[(direction, edge_label, label)] += 1
    return types


def _data_neighbor_count(
    graph: LabeledGraph,
    data_vertex: int,
    neighbor_type: NeighborType,
) -> int:
    """Number of data neighbours matching one query neighbour type."""
    outgoing, edge_label, vertex_label = neighbor_type
    vertex_labels: FrozenSet[int] = (
        frozenset((vertex_label,)) if vertex_label is not None else frozenset()
    )
    neighbours = graph.neighbors_by_type(
        data_vertex,
        edge_label if edge_label is not None else None,
        vertex_labels,
        outgoing=outgoing,
    )
    return len(neighbours)


def degree_filter(
    graph: LabeledGraph,
    query: QueryGraph,
    query_vertex: int,
    data_vertex: int,
    homomorphism: bool,
) -> bool:
    """Degree filter test.

    Isomorphism: ``deg(v) >= deg(u)``.  Homomorphism: the data vertex must
    have at least as many neighbours as the query vertex has *distinct
    neighbour types*.
    """
    data_degree = graph.degree(data_vertex)
    if homomorphism:
        required = len(query_neighbor_types(query, query_vertex))
    else:
        required = query.degree(query_vertex)
    return data_degree >= required


def nlf_filter(
    graph: LabeledGraph,
    query: QueryGraph,
    query_vertex: int,
    data_vertex: int,
    homomorphism: bool,
) -> bool:
    """Neighbourhood label frequency filter test.

    Isomorphism: for every neighbour type the data vertex needs at least as
    many neighbours as the query vertex.  Homomorphism: at least one.
    """
    required = query_neighbor_types(query, query_vertex)
    for neighbor_type, count in required.items():
        needed = 1 if homomorphism else count
        if _data_neighbor_count(graph, data_vertex, neighbor_type) < needed:
            return False
    return True


def passes_filters(
    graph: LabeledGraph,
    query: QueryGraph,
    query_vertex: int,
    data_vertex: int,
    homomorphism: bool,
    use_degree: bool,
    use_nlf: bool,
) -> bool:
    """Combined filter test honouring the -DEG / -NLF optimization switches."""
    if use_degree and not degree_filter(graph, query, query_vertex, data_vertex, homomorphism):
        return False
    if use_nlf and not nlf_filter(graph, query, query_vertex, data_vertex, homomorphism):
        return False
    return True
