"""Query tree construction (``WriteQueryTree`` of Algorithm 1).

Starting from the chosen start query vertex, a breadth-first traversal of the
query graph produces a spanning tree.  Each non-root vertex records the query
edge connecting it to its parent (the *tree edge*); every other query edge is
a *non-tree edge* and is verified later by ``IsJoinable`` during
SubgraphSearch.  The tree also exposes the root-to-leaf *query paths* used by
``DetermineMatchingOrder``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.query_graph import QueryEdge, QueryGraph


@dataclass
class TreeEdge:
    """The tree edge connecting a child query vertex to its parent.

    ``outgoing_from_parent`` records the direction of the underlying query
    edge: True when the edge goes parent → child in the query graph.
    """

    child: int
    parent: int
    edge: QueryEdge
    outgoing_from_parent: bool


@dataclass
class QueryTree:
    """BFS spanning tree of a (connected) query graph."""

    root: int
    parent: Dict[int, int] = field(default_factory=dict)
    children: Dict[int, List[int]] = field(default_factory=dict)
    tree_edges: Dict[int, TreeEdge] = field(default_factory=dict)
    non_tree_edges: List[QueryEdge] = field(default_factory=list)
    bfs_order: List[int] = field(default_factory=list)

    def paths(self) -> List[List[int]]:
        """Root-to-leaf query paths (each path includes the root)."""
        leaves = [v for v in self.bfs_order if not self.children.get(v)]
        if not leaves:
            return [[self.root]]
        result = []
        for leaf in leaves:
            path = [leaf]
            while path[-1] != self.root:
                path.append(self.parent[path[-1]])
            result.append(list(reversed(path)))
        return result

    def non_tree_edges_of(self, vertex: int) -> List[QueryEdge]:
        """Non-tree edges incident to a query vertex."""
        return [
            edge
            for edge in self.non_tree_edges
            if edge.source == vertex or edge.target == vertex
        ]


def write_query_tree(query: QueryGraph, start_vertex: int) -> QueryTree:
    """Build the BFS query tree rooted at ``start_vertex``.

    Parallel edges between the same vertex pair contribute one tree edge; the
    rest become non-tree edges so their existence is still verified during
    the search.
    """
    tree = QueryTree(root=start_vertex)
    tree.children = {v: [] for v in range(query.vertex_count())}
    visited = {start_vertex}
    tree.bfs_order.append(start_vertex)
    queue = deque([start_vertex])
    used_edge_ids: set = set()

    while queue:
        current = queue.popleft()
        # Deterministic child order: outgoing edges first, then incoming,
        # both in declaration order.
        for edge, outgoing in _incident_with_direction(query, current):
            other = edge.target if outgoing else edge.source
            edge_id = id(edge)
            if other in visited:
                continue
            visited.add(other)
            used_edge_ids.add(edge_id)
            tree.parent[other] = current
            tree.children[current].append(other)
            tree.tree_edges[other] = TreeEdge(
                child=other,
                parent=current,
                edge=edge,
                outgoing_from_parent=outgoing,
            )
            tree.bfs_order.append(other)
            queue.append(other)

    tree.non_tree_edges = [edge for edge in query.edges if id(edge) not in used_edge_ids]
    return tree


def _incident_with_direction(query: QueryGraph, vertex: int) -> List[Tuple[QueryEdge, bool]]:
    """Incident edges of a vertex annotated with 'is outgoing from vertex'."""
    result: List[Tuple[QueryEdge, bool]] = []
    for edge in query.out_edges(vertex):
        result.append((edge, True))
    for edge in query.in_edges(vertex):
        result.append((edge, False))
    return result
