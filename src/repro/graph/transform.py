"""RDF ⟷ labeled-graph transformations (Sections 3.2 and 4.1).

Two transformations of a dictionary-encoded :class:`TripleStore` are
provided:

* :func:`direct_transform` — every subject/object becomes a vertex whose
  label set is ``{its own id}``; every triple becomes an edge labeled by its
  predicate id (Figure 4).  ``rdf:type`` edges are kept as ordinary edges.
* :func:`type_aware_transform` — the two-attribute vertex model (Figure 7,
  Definition 3): ``rdf:type`` / ``rdfs:subClassOf`` triples are folded into
  vertex label sets (type ids), the class vertices disappear, and the
  remaining triples become edges.

The corresponding query transformations convert a SPARQL basic graph pattern
into a :class:`QueryGraph` against the matching data graph.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.labeled_graph import GraphBuilder, LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.rdf.dictionary import Dictionary
from repro.rdf.namespaces import RDF, RDFS
from repro.rdf.store import TripleStore
from repro.rdf.terms import Term
from repro.sparql.ast import TriplePattern, Variable

#: Label / vertex-id sentinel guaranteed not to exist in any data graph.
#: Query constants that are unknown to the dictionary map to it, which makes
#: the corresponding candidate set empty and the query return zero solutions.
IMPOSSIBLE = -1


@dataclass
class GraphMapping:
    """Book-keeping connecting dictionary node ids to graph vertex ids.

    For the direct transformation the mapping is the identity.  For the
    type-aware transformation, class nodes are dropped and the remaining
    nodes are renumbered densely; vertex labels are class node ids.
    """

    kind: str
    dictionary: Dictionary
    node_to_vertex: Optional[Dict[int, int]] = None
    vertex_to_node: Optional[List[int]] = None
    type_predicates: FrozenSet[int] = frozenset()

    def vertex_for_node(self, node_id: int) -> int:
        """Graph vertex for a dictionary node id (IMPOSSIBLE if absent)."""
        if self.node_to_vertex is None:
            return node_id
        return self.node_to_vertex.get(node_id, IMPOSSIBLE)

    def node_for_vertex(self, vertex: int) -> int:
        """Dictionary node id for a graph vertex."""
        if self.vertex_to_node is None:
            return vertex
        return self.vertex_to_node[vertex]

    def term_for_vertex(self, vertex: int) -> Term:
        """Decode a graph vertex back to its RDF term."""
        return self.dictionary.decode_node(self.node_for_vertex(vertex))

    def terms_for_vertices(self, vertices: Iterable[int]) -> List[Term]:
        """Bulk-decode a whole id column to terms in one pass.

        The batch pipeline's materialization primitive: one call decodes an
        entire :class:`~repro.sparql.binding_batch.BindingBatch` column at
        the results boundary instead of one dictionary round trip per cell.
        """
        if self.vertex_to_node is None:
            return self.dictionary.decode_nodes(vertices)
        vertex_to_node = self.vertex_to_node
        return self.dictionary.decode_nodes(vertex_to_node[v] for v in vertices)

    def term_for_label(self, label: int) -> Term:
        """Decode a vertex label back to its RDF term (class IRI)."""
        return self.dictionary.decode_node(label)

    def term_for_edge_label(self, edge_label: int) -> Term:
        """Decode an edge label back to its predicate IRI."""
        return self.dictionary.decode_predicate(edge_label)


@dataclass
class TransformStats:
    """Size statistics of a transformed graph (Table 1 rows)."""

    name: str
    kind: str
    vertices: int
    edges: int

    def as_row(self) -> Dict[str, object]:
        """Render as a flat dict for the benchmark tables."""
        return {"dataset": self.name, "transform": self.kind, "|V|": self.vertices, "|E|": self.edges}


def _type_predicate_ids(dictionary: Dictionary) -> Tuple[Optional[int], Optional[int]]:
    """Ids of rdf:type and rdfs:subClassOf, when present in the data."""
    return (
        dictionary.lookup_predicate(RDF.type),
        dictionary.lookup_predicate(RDFS.subClassOf),
    )


# --------------------------------------------------------------------- direct
def direct_transform(store: TripleStore) -> Tuple[LabeledGraph, GraphMapping]:
    """Direct transformation of an RDF store (Section 3.2).

    Every node id becomes a vertex labeled with its own id; every triple
    becomes an edge labeled by its predicate id.
    """
    dictionary = store.dictionary
    builder = GraphBuilder()
    for node_id in range(dictionary.node_count):
        builder.add_vertex(node_id, (node_id,))
    for s, p, o in store.iter_triples():
        builder.add_edge(s, p, o)
    graph = builder.build()
    mapping = GraphMapping(kind="direct", dictionary=dictionary)
    return graph, mapping


# ----------------------------------------------------------------- type-aware
def type_aware_transform(store: TripleStore) -> Tuple[LabeledGraph, GraphMapping]:
    """Type-aware transformation of an RDF store (Definition 3).

    rdf:type / rdfs:subClassOf triples are folded into vertex label sets; the
    class nodes themselves are only materialized as vertices if they also
    participate in ordinary (non-schema) triples.
    """
    dictionary = store.dictionary
    type_pred, subclass_pred = _type_predicate_ids(dictionary)

    # 1. Collect direct types and the subclass hierarchy.
    direct_types: Dict[int, Set[int]] = defaultdict(set)
    superclass_edges: Dict[int, Set[int]] = defaultdict(set)
    data_triples: List[Tuple[int, int, int]] = []
    for s, p, o in store.iter_triples():
        if type_pred is not None and p == type_pred:
            direct_types[s].add(o)
        elif subclass_pred is not None and p == subclass_pred:
            superclass_edges[s].add(o)
        else:
            data_triples.append((s, p, o))

    # 2. Transitive closure over the subclass hierarchy (Definition 3, rule 7:
    #    "there is a path ... using triples in T't ∪ T'sc").
    closure_cache: Dict[int, Set[int]] = {}

    def superclasses(cls: int) -> Set[int]:
        cached = closure_cache.get(cls)
        if cached is not None:
            return cached
        seen: Set[int] = set()
        stack = list(superclass_edges.get(cls, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(superclass_edges.get(node, ()))
        closure_cache[cls] = seen
        return seen

    # 3. Decide which nodes become vertices: subjects/objects of data triples
    #    plus subjects of rdf:type triples.
    vertex_nodes: Set[int] = set()
    for s, _, o in data_triples:
        vertex_nodes.add(s)
        vertex_nodes.add(o)
    vertex_nodes.update(direct_types)

    vertex_to_node = sorted(vertex_nodes)
    node_to_vertex = {node: index for index, node in enumerate(vertex_to_node)}

    builder = GraphBuilder()
    for node in vertex_to_node:
        labels: Set[int] = set()
        for cls in direct_types.get(node, ()):
            labels.add(cls)
            labels.update(superclasses(cls))
        builder.add_vertex(node_to_vertex[node], labels)
    for s, p, o in data_triples:
        builder.add_edge(node_to_vertex[s], p, node_to_vertex[o])
    graph = builder.build()

    type_predicates = frozenset(
        pid for pid in (type_pred, subclass_pred) if pid is not None
    )
    mapping = GraphMapping(
        kind="type-aware",
        dictionary=dictionary,
        node_to_vertex=node_to_vertex,
        vertex_to_node=vertex_to_node,
        type_predicates=type_predicates,
    )
    return graph, mapping


# --------------------------------------------------------------- query graphs
@dataclass
class QueryTransformResult:
    """A transformed query plus the patterns that could not be embedded.

    ``type_variable_patterns`` holds ``?x rdf:type ?t`` patterns (only
    possible under the type-aware transformation) which the engine resolves
    after matching by enumerating the matched vertex's label set.
    """

    query_graph: QueryGraph
    type_variable_patterns: List[Tuple[str, str]] = field(default_factory=list)


def _constant_name(term: Term) -> str:
    """Synthetic query-vertex name for a constant term."""
    return f"!const:{term!r}"


def direct_transform_query(
    patterns: Sequence[TriplePattern],
    mapping: GraphMapping,
) -> QueryTransformResult:
    """Build the direct-transformation query graph of a BGP (Figure 5).

    Constants become query vertices labeled with their own node id;
    variables become blank-labeled vertices.
    """
    dictionary = mapping.dictionary
    query = QueryGraph()

    def vertex_for(term) -> int:
        if isinstance(term, Variable):
            return query.add_vertex(str(term))
        node_id = dictionary.lookup_node(term)
        label = node_id if node_id is not None else IMPOSSIBLE
        return query.add_vertex(_constant_name(term), frozenset((label,)), is_variable=False)

    for pattern in patterns:
        source = vertex_for(pattern.subject)
        target = vertex_for(pattern.object)
        if isinstance(pattern.predicate, Variable):
            query.add_edge(source, target, None, str(pattern.predicate))
        else:
            pred_id = dictionary.lookup_predicate(pattern.predicate)
            query.add_edge(source, target, pred_id if pred_id is not None else IMPOSSIBLE)
    return QueryTransformResult(query_graph=query)


def type_aware_transform_query(
    patterns: Sequence[TriplePattern],
    mapping: GraphMapping,
) -> QueryTransformResult:
    """Build the type-aware query graph of a BGP (Figure 8).

    ``?x rdf:type C`` patterns with a constant class are folded into the
    label set of ``?x``; patterns whose class is a variable are returned
    separately for post-matching resolution.  Constant subjects/objects use
    the ID attribute of the two-attribute vertex model.
    """
    dictionary = mapping.dictionary
    query = QueryGraph()
    type_variable_patterns: List[Tuple[str, str]] = []

    def vertex_for(term) -> int:
        if isinstance(term, Variable):
            return query.add_vertex(str(term))
        node_id = dictionary.lookup_node(term)
        vertex_id = mapping.vertex_for_node(node_id) if node_id is not None else IMPOSSIBLE
        return query.add_vertex(_constant_name(term), vertex_id=vertex_id, is_variable=False)

    for pattern in patterns:
        predicate = pattern.predicate
        if not isinstance(predicate, Variable) and predicate == RDF.type:
            # Fold the type into the subject's label set when the class is
            # concrete; otherwise defer to post-matching resolution.
            subject_index = vertex_for(pattern.subject)
            if isinstance(pattern.object, Variable):
                type_variable_patterns.append(
                    (query.vertices[subject_index].name, str(pattern.object))
                )
            else:
                class_id = dictionary.lookup_node(pattern.object)
                label = class_id if class_id is not None else IMPOSSIBLE
                query.vertices[subject_index].labels = (
                    query.vertices[subject_index].labels | frozenset((label,))
                )
            continue
        if not isinstance(predicate, Variable) and predicate == RDFS.subClassOf:
            # Schema pattern against a type-aware graph: the edge no longer
            # exists.  Treat it as unsatisfiable rather than silently wrong.
            source = vertex_for(pattern.subject)
            target = vertex_for(pattern.object)
            query.add_edge(source, target, IMPOSSIBLE)
            continue
        source = vertex_for(pattern.subject)
        target = vertex_for(pattern.object)
        if isinstance(predicate, Variable):
            query.add_edge(source, target, None, str(predicate))
        else:
            pred_id = dictionary.lookup_predicate(predicate)
            query.add_edge(source, target, pred_id if pred_id is not None else IMPOSSIBLE)
    return QueryTransformResult(
        query_graph=query,
        type_variable_patterns=type_variable_patterns,
    )


def transform_stats(name: str, store: TripleStore) -> List[TransformStats]:
    """Compute Table-1 style statistics for both transformations of a store."""
    rows: List[TransformStats] = []
    for kind, transform in (("direct", direct_transform), ("type-aware", type_aware_transform)):
        graph, _ = transform(store)
        rows.append(TransformStats(name=name, kind=kind, vertices=graph.vertex_count, edges=graph.edge_count))
    return rows
