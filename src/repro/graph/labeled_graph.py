"""In-memory labeled directed multigraph on a compact CSR core (Figure 9).

A :class:`LabeledGraph` stores every posting list of the paper's Figure 9
structures in *contiguous offset/neighbour arrays* (compressed sparse row
layout) instead of nested dictionaries of lists:

* **per-edge-label adjacency** — for each direction (outgoing / incoming) a
  :class:`_DirectionCSR` holds one flat neighbour array; the group of
  neighbours reachable from vertex ``v`` via edge label ``l`` is the window
  ``nbr[nbr_off[g] : nbr_off[g + 1]]`` where ``g`` is found by a bounded
  binary search of ``l`` in the vertex's sorted label-key window
  ``label_keys[label_off[v] : label_off[v + 1]]``,
* **per-neighbour-type adjacency** — the same three-level layout keyed by
  the pair ``(edge label, vertex label)``, used when both the predicate and
  the neighbour's type are known (Section 4.2),
* **inverse vertex label list** (label → sorted vertices) and the
  **predicate index** (edge label → sorted subjects / sorted objects) as
  sorted key arrays with parallel offset/posting arrays.

Every posting group is a sorted, duplicate-free integer run inside one flat
array, so the ``+INT`` bulk-intersection optimization operates on zero-copy
``(array, lo, hi)`` windows (see :mod:`repro.utils.intersect`) instead of
materialized list slices.  The flat arrays are plain Python lists — in
CPython a list *is* a contiguous pointer array, indexes faster than
``array('q')`` (which re-boxes every element on access), and list slices
keep the public accessors list-typed.

Graphs are built through :class:`GraphBuilder` (mutable accumulation) and
then frozen into the read-only :class:`LabeledGraph`.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections import defaultdict
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.exceptions import GraphError
from repro.utils.intersect import (
    Window,
    as_window,
    intersect_windows,
    union_windows,
)

EMPTY_LABELS: FrozenSet[int] = frozenset()
_EMPTY_LIST: List[int] = []
#: The canonical empty posting window.
_EMPTY_WINDOW: Window = (_EMPTY_LIST, 0, 0)


def _window_slice(base: Sequence[int], lo: int, hi: int) -> List[int]:
    """Materialize ``base[lo:hi]`` as a plain list.

    Posting arrays of a shared-memory–attached graph are ``memoryview``
    casts, whose slices are views; list-typed public accessors normalize
    them so callers see the same types on owned and attached graphs.
    """
    segment = base[lo:hi]
    return segment if type(segment) is list else list(segment)


class GraphBuilder:
    """Mutable accumulator used to construct a :class:`LabeledGraph`."""

    def __init__(self) -> None:
        self._labels: Dict[int, Set[int]] = defaultdict(set)
        self._edges: Set[Tuple[int, int, int]] = set()
        self._max_vertex = -1

    def add_vertex(self, vertex: int, labels: Iterable[int] = ()) -> None:
        """Declare a vertex and add labels to it."""
        if vertex < 0:
            raise GraphError(f"vertex ids must be non-negative, got {vertex}")
        self._labels[vertex].update(labels)
        self._max_vertex = max(self._max_vertex, vertex)

    def add_edge(self, source: int, edge_label: int, target: int) -> None:
        """Add a directed labeled edge, creating endpoints as needed."""
        self.add_vertex(source)
        self.add_vertex(target)
        self._edges.add((source, edge_label, target))

    def build(self) -> "LabeledGraph":
        """Freeze into an immutable :class:`LabeledGraph`."""
        vertex_count = self._max_vertex + 1
        labels = [frozenset(self._labels.get(v, ())) for v in range(vertex_count)]
        return LabeledGraph(vertex_count, labels, self._edges)


class _DirectionCSR:
    """One direction of the adjacency, compressed into flat offset arrays.

    Two parallel three-level CSR structures share the class: one keyed by the
    edge label alone and one keyed by the neighbour type ``(edge label,
    vertex label)``.  Level one is the per-vertex window into the sorted key
    array, level two the per-key window into the flat neighbour array.
    """

    __slots__ = (
        "label_off",
        "label_keys",
        "nbr_off",
        "nbr",
        "type_off",
        "type_keys",
        "type_nbr_off",
        "type_nbr",
    )

    def __init__(
        self,
        vertex_count: int,
        triples: List[Tuple[int, int, int]],
        vertex_labels: Sequence[FrozenSet[int]],
    ) -> None:
        # ``triples`` are (vertex, edge label, neighbour), sorted and unique.
        self.label_off, self.label_keys, self.nbr_off, self.nbr = _build_csr_levels(
            vertex_count, triples
        )

        # Neighbour-type CSR: expand each neighbour into one entry per label.
        typed: List[Tuple[int, Tuple[int, int], int]] = []
        for vertex, edge_label, neighbor in triples:
            for vertex_label in vertex_labels[neighbor]:
                typed.append((vertex, (edge_label, vertex_label), neighbor))
        typed.sort()
        self.type_off, self.type_keys, self.type_nbr_off, self.type_nbr = _build_csr_levels(
            vertex_count, typed
        )

    @classmethod
    def _attach(
        cls,
        label_off: Sequence[int],
        label_keys: Sequence[int],
        nbr_off: Sequence[int],
        nbr: Sequence[int],
        type_off: Sequence[int],
        type_keys: List[Tuple[int, int]],
        type_nbr_off: Sequence[int],
        type_nbr: Sequence[int],
    ) -> "_DirectionCSR":
        """Rebuild a direction CSR around already-materialized flat arrays.

        Used by :meth:`LabeledGraph.attach_shared`: the arrays are
        ``memoryview`` casts into a shared-memory segment (zero-copy except
        for ``type_keys``, whose pair keys are re-zipped into tuples).
        """
        csr = cls.__new__(cls)
        csr.label_off = label_off
        csr.label_keys = label_keys
        csr.nbr_off = nbr_off
        csr.nbr = nbr
        csr.type_off = type_off
        csr.type_keys = type_keys
        csr.type_nbr_off = type_nbr_off
        csr.type_nbr = type_nbr
        return csr

    # ------------------------------------------------------------- look-ups
    def window(self, vertex: int, edge_label: int) -> Window:
        """Zero-copy neighbour window for ``(vertex, edge label)``."""
        lo = self.label_off[vertex]
        hi = self.label_off[vertex + 1]
        i = bisect_left(self.label_keys, edge_label, lo, hi)
        if i < hi and self.label_keys[i] == edge_label:
            return (self.nbr, self.nbr_off[i], self.nbr_off[i + 1])
        return _EMPTY_WINDOW

    def any_label_windows(self, vertex: int) -> List[Window]:
        """One window per edge-label group of ``vertex``."""
        lo = self.label_off[vertex]
        hi = self.label_off[vertex + 1]
        return [(self.nbr, self.nbr_off[g], self.nbr_off[g + 1]) for g in range(lo, hi)]

    def type_window(self, vertex: int, edge_label: int, vertex_label: int) -> Window:
        """Zero-copy neighbour window for one neighbour type."""
        lo = self.type_off[vertex]
        hi = self.type_off[vertex + 1]
        key = (edge_label, vertex_label)
        i = bisect_left(self.type_keys, key, lo, hi)
        if i < hi and self.type_keys[i] == key:
            return (self.type_nbr, self.type_nbr_off[i], self.type_nbr_off[i + 1])
        return _EMPTY_WINDOW

    def type_windows_for_label(self, vertex: int, vertex_label: int) -> List[Window]:
        """Windows of every ``(*, vertex_label)`` type group of ``vertex``."""
        lo = self.type_off[vertex]
        hi = self.type_off[vertex + 1]
        return [
            (self.type_nbr, self.type_nbr_off[g], self.type_nbr_off[g + 1])
            for g in range(lo, hi)
            if self.type_keys[g][1] == vertex_label
        ]

    def degree(self, vertex: int) -> int:
        """Number of adjacency entries (distinct (label, neighbour) pairs)."""
        lo = self.label_off[vertex]
        hi = self.label_off[vertex + 1]
        return self.nbr_off[hi] - self.nbr_off[lo]


def _build_csr_levels(vertex_count, rows):
    """Build one three-level CSR from sorted ``(vertex, key, neighbour)`` rows.

    Returns ``(off, keys, nbr_off, nbr)`` in a single pass: ``off`` windows
    each vertex's run of ``keys``, ``nbr_off`` windows each key group's run
    of ``nbr`` (with the end sentinel at ``nbr_off[len(keys)]``).
    """
    off = [0] * (vertex_count + 1)
    keys: List = []
    nbr_off: List[int] = []
    nbr: List[int] = []
    previous = None
    for vertex, key, neighbor in rows:
        group = (vertex, key)
        if group != previous:
            keys.append(key)
            nbr_off.append(len(nbr))
            off[vertex + 1] += 1
            previous = group
        nbr.append(neighbor)
    nbr_off.append(len(nbr))
    for vertex in range(vertex_count):
        off[vertex + 1] += off[vertex]
    return off, keys, nbr_off, nbr


class _PostingIndex:
    """Sorted-key index over one flat posting array (labels / predicates)."""

    __slots__ = ("keys", "off", "postings")

    def __init__(self, groups: Dict[int, List[int]]) -> None:
        self.keys: List[int] = sorted(groups)
        self.off: List[int] = [0]
        self.postings: List[int] = []
        for key in self.keys:
            self.postings.extend(sorted(groups[key]))
            self.off.append(len(self.postings))

    @classmethod
    def _attach(
        cls, keys: Sequence[int], off: Sequence[int], postings: Sequence[int]
    ) -> "_PostingIndex":
        """Rebuild a posting index around shared-memory array views."""
        index = cls.__new__(cls)
        index.keys = keys
        index.off = off
        index.postings = postings
        return index

    def window(self, key: int) -> Window:
        i = bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            return (self.postings, self.off[i], self.off[i + 1])
        return _EMPTY_WINDOW

    def get(self, key: int) -> List[int]:
        base, lo, hi = self.window(key)
        return _window_slice(base, lo, hi)

    def count(self, key: int) -> int:
        _, lo, hi = self.window(key)
        return hi - lo


class LabeledGraph:
    """Read-only labeled directed multigraph on CSR posting arrays."""

    def __init__(
        self,
        vertex_count: int,
        labels: Sequence[FrozenSet[int]],
        edges: Iterable[Tuple[int, int, int]],
    ) -> None:
        if len(labels) != vertex_count:
            raise GraphError("labels must have one entry per vertex")
        self.vertex_count = vertex_count
        self.labels: List[FrozenSet[int]] = list(labels)

        unique_edges = sorted(set(edges))
        self.edge_count = len(unique_edges)

        # Outgoing CSR: (source, label, target); incoming CSR: (target, label, source).
        self._out = _DirectionCSR(vertex_count, unique_edges, self.labels)
        incoming = sorted((t, l, s) for (s, l, t) in unique_edges)
        self._in = _DirectionCSR(vertex_count, incoming, self.labels)

        # Inverse vertex label list: label -> sorted vertices carrying it.
        inverse: Dict[int, List[int]] = defaultdict(list)
        for v in range(vertex_count):
            for label in self.labels[v]:
                inverse[label].append(v)
        self._inverse_label = _PostingIndex(inverse)

        # Predicate index: edge label -> (sorted subjects, sorted objects).
        pred_subjects: Dict[int, Set[int]] = defaultdict(set)
        pred_objects: Dict[int, Set[int]] = defaultdict(set)
        for source, edge_label, target in unique_edges:
            pred_subjects[edge_label].add(source)
            pred_objects[edge_label].add(target)
        self._pred_subjects = _PostingIndex(
            {k: list(vs) for k, vs in pred_subjects.items()}
        )
        self._pred_objects = _PostingIndex(
            {k: list(vs) for k, vs in pred_objects.items()}
        )

        # Total degree per vertex: distinct (label, neighbour) entries, both
        # directions (a self-loop counts once per direction).
        self._degree: List[int] = [
            self._out.degree(v) + self._in.degree(v) for v in range(vertex_count)
        ]

    # ------------------------------------------------------------------ views
    def vertices(self) -> range:
        """All vertex ids."""
        return range(self.vertex_count)

    def vertex_labels(self, vertex: int) -> FrozenSet[int]:
        """Label set of a vertex."""
        return self.labels[vertex]

    def degree(self, vertex: int) -> int:
        """Total (in + out) degree."""
        return self._degree[vertex]

    def edge_labels(self) -> Set[int]:
        """All edge labels present in the graph."""
        return set(self._pred_subjects.keys)

    def all_labels(self) -> Set[int]:
        """All vertex labels present in the graph."""
        return set(self._inverse_label.keys)

    def iter_edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over ``(source, edge label, target)`` edges."""
        csr = self._out
        for v in range(self.vertex_count):
            for g in range(csr.label_off[v], csr.label_off[v + 1]):
                edge_label = csr.label_keys[g]
                for i in range(csr.nbr_off[g], csr.nbr_off[g + 1]):
                    yield (v, edge_label, csr.nbr[i])

    # -------------------------------------------------------------- adjacency
    def out_neighbors(self, vertex: int, edge_label: Optional[int] = None) -> List[int]:
        """Outgoing neighbours, optionally restricted to one edge label."""
        base, lo, hi = self.out_window(vertex, edge_label)
        return _window_slice(base, lo, hi)

    def in_neighbors(self, vertex: int, edge_label: Optional[int] = None) -> List[int]:
        """Incoming neighbours, optionally restricted to one edge label."""
        base, lo, hi = self.in_window(vertex, edge_label)
        return _window_slice(base, lo, hi)

    def out_window(self, vertex: int, edge_label: Optional[int] = None) -> Window:
        """Outgoing neighbours as a zero-copy ``(base, lo, hi)`` window.

        With a blank edge label the per-label groups are merged, which
        materializes a fresh list wrapped as a window.
        """
        if edge_label is not None:
            return self._out.window(vertex, edge_label)
        return as_window(union_windows(self._out.any_label_windows(vertex)))

    def in_window(self, vertex: int, edge_label: Optional[int] = None) -> Window:
        """Incoming counterpart of :meth:`out_window`."""
        if edge_label is not None:
            return self._in.window(vertex, edge_label)
        return as_window(union_windows(self._in.any_label_windows(vertex)))

    def neighbors_by_type(
        self,
        vertex: int,
        edge_label: Optional[int],
        vertex_labels: FrozenSet[int],
        outgoing: bool = True,
    ) -> List[int]:
        """Adjacent vertices matching a neighbour type (as a list)."""
        base, lo, hi = self.neighbors_by_type_window(
            vertex, edge_label, vertex_labels, outgoing
        )
        return _window_slice(base, lo, hi)

    def neighbors_by_type_window(
        self,
        vertex: int,
        edge_label: Optional[int],
        vertex_labels: FrozenSet[int],
        outgoing: bool = True,
    ) -> Window:
        """Adjacent vertices matching a neighbour type, as a posting window.

        Implements the adjacency look-up rules of Section 4.2:

        * one vertex label + one edge label — direct CSR group look-up
          (zero-copy),
        * several vertex labels — intersect the per-label groups,
        * blank vertex label — fall back to the per-edge-label group,
        * blank edge label — union over all edge labels (restricted to the
          requested vertex labels when given).
        """
        csr = self._out if outgoing else self._in
        if edge_label is not None:
            if not vertex_labels:
                return csr.window(vertex, edge_label)
            if len(vertex_labels) == 1:
                (vertex_label,) = vertex_labels
                return csr.type_window(vertex, edge_label, vertex_label)
            windows = [
                csr.type_window(vertex, edge_label, vertex_label)
                for vertex_label in vertex_labels
            ]
            return as_window(intersect_windows(windows))
        # Blank edge label: union over every edge label.
        if not vertex_labels:
            return as_window(union_windows(csr.any_label_windows(vertex)))
        per_label = [
            union_windows(csr.type_windows_for_label(vertex, vertex_label))
            for vertex_label in vertex_labels
        ]
        if len(per_label) == 1:
            return as_window(per_label[0])
        return as_window(intersect_windows([as_window(lst) for lst in per_label]))

    def count_neighbors_by_type(
        self,
        vertex: int,
        edge_label: Optional[int],
        vertex_labels: FrozenSet[int],
        outgoing: bool = True,
    ) -> int:
        """Number of adjacent vertices matching a neighbour type.

        The common NLF-filter case (one concrete edge label, at most one
        vertex label) is answered from the CSR offsets alone, without
        touching the posting arrays.
        """
        _, lo, hi = self.neighbors_by_type_window(
            vertex, edge_label, vertex_labels, outgoing
        )
        return hi - lo

    def has_edge(self, source: int, target: int, edge_label: Optional[int] = None) -> bool:
        """Edge existence test (any label when ``edge_label`` is None)."""
        csr = self._out
        if edge_label is not None:
            # Inlined CSR group look-up — this probe is the inner loop of the
            # original (non-+INT) IsJoinable strategy.
            label_off = csr.label_off
            label_keys = csr.label_keys
            lo = label_off[source]
            hi = label_off[source + 1]
            g = bisect_left(label_keys, edge_label, lo, hi)
            if g >= hi or label_keys[g] != edge_label:
                return False
            nbr = csr.nbr
            nbr_lo = csr.nbr_off[g]
            nbr_hi = csr.nbr_off[g + 1]
            i = bisect_left(nbr, target, nbr_lo, nbr_hi)
            return i < nbr_hi and nbr[i] == target
        for base, lo, hi in csr.any_label_windows(source):
            i = bisect_left(base, target, lo, hi)
            if i < hi and base[i] == target:
                return True
        return False

    def edge_labels_between(self, source: int, target: int) -> List[int]:
        """All edge labels connecting source to target (for predicate variables)."""
        csr = self._out
        result: List[int] = []
        for g in range(csr.label_off[source], csr.label_off[source + 1]):
            lo, hi = csr.nbr_off[g], csr.nbr_off[g + 1]
            i = bisect_left(csr.nbr, target, lo, hi)
            if i < hi and csr.nbr[i] == target:
                result.append(csr.label_keys[g])
        return result

    def neighbor_type_counts(self, vertex: int, outgoing: bool = True) -> Dict[Tuple[int, int], int]:
        """Number of neighbours per (edge label, vertex label) group (NLF filter input)."""
        csr = self._out if outgoing else self._in
        counts: Dict[Tuple[int, int], int] = {}
        for g in range(csr.type_off[vertex], csr.type_off[vertex + 1]):
            counts[csr.type_keys[g]] = csr.type_nbr_off[g + 1] - csr.type_nbr_off[g]
        return counts

    # ----------------------------------------------------------------- labels
    def vertices_with_label(self, label: int) -> List[int]:
        """Sorted vertices carrying a label (inverse vertex label list)."""
        return self._inverse_label.get(label)

    def vertices_with_label_window(self, label: int) -> Window:
        """Zero-copy window into the inverse vertex label list."""
        return self._inverse_label.window(label)

    def vertices_with_labels(self, labels: FrozenSet[int]) -> List[int]:
        """Sorted vertices carrying *all* the given labels."""
        if not labels:
            return list(range(self.vertex_count))
        windows = [self._inverse_label.window(label) for label in labels]
        if len(windows) == 1:
            base, lo, hi = windows[0]
            return _window_slice(base, lo, hi)
        return intersect_windows(windows)

    def label_frequency(self, labels: FrozenSet[int]) -> int:
        """``freq(g, L(u))`` — number of vertices carrying all the labels."""
        if not labels:
            return self.vertex_count
        if len(labels) == 1:
            return self._inverse_label.count(next(iter(labels)))
        return len(self.vertices_with_labels(labels))

    # -------------------------------------------------------- predicate index
    def predicate_subjects(self, edge_label: int) -> List[int]:
        """Sorted vertices with at least one outgoing edge of this label."""
        return self._pred_subjects.get(edge_label)

    def predicate_objects(self, edge_label: int) -> List[int]:
        """Sorted vertices with at least one incoming edge of this label."""
        return self._pred_objects.get(edge_label)

    def predicate_subject_count(self, edge_label: int) -> int:
        """Number of subjects of a predicate, from the offsets alone."""
        return self._pred_subjects.count(edge_label)

    def predicate_object_count(self, edge_label: int) -> int:
        """Number of objects of a predicate, from the offsets alone."""
        return self._pred_objects.count(edge_label)

    def predicate_subjects_window(self, edge_label: int) -> Window:
        """Zero-copy window over the subjects of a predicate."""
        return self._pred_subjects.window(edge_label)

    def predicate_objects_window(self, edge_label: int) -> Window:
        """Zero-copy window over the objects of a predicate."""
        return self._pred_objects.window(edge_label)

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, int]:
        """Size statistics used by Table 1."""
        return {
            "vertices": self.vertex_count,
            "edges": self.edge_count,
            "vertex_labels": len(self._inverse_label.keys),
            "edge_labels": len(self._pred_subjects.keys),
        }

    # ---------------------------------------------------------- shared memory
    def export_shared(self, name: Optional[str] = None) -> "SharedGraphHandle":
        """Pack every flat CSR array into one shared-memory segment.

        All posting arrays (adjacency, neighbour-type, inverse label,
        predicate index, degrees, plus the vertex label sets flattened into
        their own CSR pair) are written back to back as 8-byte integers.
        The returned handle owns the segment; its picklable
        :class:`SharedGraphManifest` is everything another process needs to
        :meth:`attach_shared` the graph without the graph ever being
        pickled.  The creator must keep the handle alive until every
        consumer has attached, and :meth:`SharedGraphHandle.unlink` it when
        the graph is retired.
        """
        from multiprocessing import shared_memory

        labels_off: List[int] = [0]
        labels_val: List[int] = []
        for labels in self.labels:
            labels_val.extend(sorted(labels))
            labels_off.append(len(labels_val))

        arrays: List[Tuple[str, Sequence[int]]] = [
            ("labels_off", labels_off),
            ("labels_val", labels_val),
        ]
        for prefix, csr in (("out", self._out), ("in", self._in)):
            arrays.extend(
                [
                    (f"{prefix}_label_off", csr.label_off),
                    (f"{prefix}_label_keys", csr.label_keys),
                    (f"{prefix}_nbr_off", csr.nbr_off),
                    (f"{prefix}_nbr", csr.nbr),
                    (f"{prefix}_type_off", csr.type_off),
                    (f"{prefix}_type_key_edge", [key[0] for key in csr.type_keys]),
                    (f"{prefix}_type_key_label", [key[1] for key in csr.type_keys]),
                    (f"{prefix}_type_nbr_off", csr.type_nbr_off),
                    (f"{prefix}_type_nbr", csr.type_nbr),
                ]
            )
        for prefix, index in (
            ("inv", self._inverse_label),
            ("ps", self._pred_subjects),
            ("po", self._pred_objects),
        ):
            arrays.extend(
                [
                    (f"{prefix}_keys", index.keys),
                    (f"{prefix}_off", index.off),
                    (f"{prefix}_post", index.postings),
                ]
            )
        arrays.append(("degree", self._degree))

        layout: Dict[str, Tuple[int, int]] = {}
        total = 0
        for array_name, values in arrays:
            layout[array_name] = (total, len(values))
            total += 8 * len(values)
        segment = shared_memory.SharedMemory(name=name, create=True, size=max(total, 8))
        for array_name, values in arrays:
            offset, count = layout[array_name]
            if count:
                segment.buf[offset:offset + 8 * count] = array("q", values).tobytes()
        manifest = SharedGraphManifest(
            segment=segment.name,
            vertex_count=self.vertex_count,
            edge_count=self.edge_count,
            arrays=layout,
        )
        return SharedGraphHandle(segment, manifest)

    @classmethod
    def attach_shared(cls, manifest: "SharedGraphManifest"):
        """Rebuild a read-only graph over a shared-memory segment.

        The big posting arrays stay zero-copy ``memoryview`` casts into the
        segment; only the small structural pieces that need richer Python
        types are rebuilt per process (vertex label frozensets and the
        neighbour-type pair keys).  Returns ``(graph, shm)`` — the caller
        must keep ``shm`` alive for the graph's lifetime and must *not*
        unlink it (the exporting process owns the segment).
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=manifest.segment)
        buf = shm.buf

        def view(array_name: str):
            offset, count = manifest.arrays[array_name]
            return buf[offset:offset + 8 * count].cast("q")

        graph = cls.__new__(cls)
        graph.vertex_count = manifest.vertex_count
        graph.edge_count = manifest.edge_count
        labels_off = view("labels_off")
        labels_val = view("labels_val")
        graph.labels = [
            frozenset(labels_val[labels_off[v]:labels_off[v + 1]])
            for v in range(manifest.vertex_count)
        ]

        def direction(prefix: str) -> _DirectionCSR:
            return _DirectionCSR._attach(
                view(f"{prefix}_label_off"),
                view(f"{prefix}_label_keys"),
                view(f"{prefix}_nbr_off"),
                view(f"{prefix}_nbr"),
                view(f"{prefix}_type_off"),
                list(
                    zip(
                        view(f"{prefix}_type_key_edge"),
                        view(f"{prefix}_type_key_label"),
                    )
                ),
                view(f"{prefix}_type_nbr_off"),
                view(f"{prefix}_type_nbr"),
            )

        graph._out = direction("out")
        graph._in = direction("in")
        graph._inverse_label = _PostingIndex._attach(
            view("inv_keys"), view("inv_off"), view("inv_post")
        )
        graph._pred_subjects = _PostingIndex._attach(
            view("ps_keys"), view("ps_off"), view("ps_post")
        )
        graph._pred_objects = _PostingIndex._attach(
            view("po_keys"), view("po_off"), view("po_post")
        )
        graph._degree = view("degree")
        return graph, shm

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"LabeledGraph(|V|={self.vertex_count}, |E|={self.edge_count})"


@dataclass(frozen=True)
class SharedGraphManifest:
    """Everything a process needs to attach an exported CSR graph.

    Picklable and small: the segment name plus, per flat array, its byte
    offset and element count inside the segment (all elements are 8-byte
    signed integers).
    """

    segment: str
    vertex_count: int
    edge_count: int
    arrays: Dict[str, Tuple[int, int]]


def _release_segment(segment) -> None:
    """Close and unlink a shared-memory segment, tolerating repeats."""
    try:
        segment.close()
    except (BufferError, OSError):  # pragma: no cover - platform cleanup races
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


class SharedGraphHandle:
    """Owner of one exported CSR segment (created by :meth:`export_shared`).

    ``unlink()`` retires the segment explicitly; an abandoned handle retires
    it from a GC / interpreter-exit finalizer, so no ``/dev/shm`` entry
    outlives the owning process even without an explicit close.
    """

    def __init__(self, segment, manifest: SharedGraphManifest):
        import weakref

        self.shm = segment
        self.manifest = manifest
        self._finalizer = weakref.finalize(self, _release_segment, segment)

    @property
    def name(self) -> str:
        """The shared-memory segment name (``/dev/shm`` entry on Linux)."""
        return self.manifest.segment

    def unlink(self) -> None:
        """Close the mapping and remove the segment. Idempotent."""
        self._finalizer()

    close = unlink
