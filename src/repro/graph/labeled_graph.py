"""In-memory labeled directed multigraph (the paper's Figure 9 structures).

A :class:`LabeledGraph` stores, per vertex, its label set plus incoming and
outgoing adjacency grouped two ways:

* by edge label — used when the query vertex label is blank,
* by *neighbour type*, the pair ``(edge label, vertex label)`` — used when
  both the predicate and the neighbour's type are known.

It also maintains the *inverse vertex label list* (label → sorted vertices)
and the *predicate index* (edge label → sorted subjects / sorted objects)
described in Sections 4.2.  All posting lists are sorted integer lists so
that the ``+INT`` bulk-intersection optimization applies directly.

Graphs are built through :class:`GraphBuilder` (mutable accumulation) and
then frozen into the read-only :class:`LabeledGraph`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import GraphError
from repro.utils.intersect import contains_sorted, intersect_many, union_many

EMPTY_LABELS: FrozenSet[int] = frozenset()
_EMPTY_LIST: List[int] = []


class GraphBuilder:
    """Mutable accumulator used to construct a :class:`LabeledGraph`."""

    def __init__(self) -> None:
        self._labels: Dict[int, Set[int]] = defaultdict(set)
        self._edges: Set[Tuple[int, int, int]] = set()
        self._max_vertex = -1

    def add_vertex(self, vertex: int, labels: Iterable[int] = ()) -> None:
        """Declare a vertex and add labels to it."""
        if vertex < 0:
            raise GraphError(f"vertex ids must be non-negative, got {vertex}")
        self._labels[vertex].update(labels)
        self._max_vertex = max(self._max_vertex, vertex)

    def add_edge(self, source: int, edge_label: int, target: int) -> None:
        """Add a directed labeled edge, creating endpoints as needed."""
        self.add_vertex(source)
        self.add_vertex(target)
        self._edges.add((source, edge_label, target))

    def build(self) -> "LabeledGraph":
        """Freeze into an immutable :class:`LabeledGraph`."""
        vertex_count = self._max_vertex + 1
        labels = [frozenset(self._labels.get(v, ())) for v in range(vertex_count)]
        return LabeledGraph(vertex_count, labels, self._edges)


class LabeledGraph:
    """Read-only labeled directed multigraph with sorted adjacency lists."""

    def __init__(
        self,
        vertex_count: int,
        labels: Sequence[FrozenSet[int]],
        edges: Iterable[Tuple[int, int, int]],
    ) -> None:
        if len(labels) != vertex_count:
            raise GraphError("labels must have one entry per vertex")
        self.vertex_count = vertex_count
        self.labels: List[FrozenSet[int]] = list(labels)

        out_by_label: List[Dict[int, List[int]]] = [defaultdict(list) for _ in range(vertex_count)]
        in_by_label: List[Dict[int, List[int]]] = [defaultdict(list) for _ in range(vertex_count)]
        edge_count = 0
        for source, edge_label, target in edges:
            out_by_label[source][edge_label].append(target)
            in_by_label[target][edge_label].append(source)
            edge_count += 1
        self.edge_count = edge_count

        # Freeze adjacency: sorted unique neighbour lists per edge label.
        self._out: List[Dict[int, List[int]]] = []
        self._in: List[Dict[int, List[int]]] = []
        for v in range(vertex_count):
            self._out.append({el: sorted(set(ns)) for el, ns in out_by_label[v].items()})
            self._in.append({el: sorted(set(ns)) for el, ns in in_by_label[v].items()})

        # Neighbour-type grouped adjacency: (edge label, vertex label) -> neighbours.
        self._out_by_type: List[Dict[Tuple[int, int], List[int]]] = []
        self._in_by_type: List[Dict[Tuple[int, int], List[int]]] = []
        for v in range(vertex_count):
            out_groups: Dict[Tuple[int, int], List[int]] = defaultdict(list)
            for el, neighbours in self._out[v].items():
                for n in neighbours:
                    for vl in self.labels[n]:
                        out_groups[(el, vl)].append(n)
            self._out_by_type.append({k: sorted(set(ns)) for k, ns in out_groups.items()})
            in_groups: Dict[Tuple[int, int], List[int]] = defaultdict(list)
            for el, neighbours in self._in[v].items():
                for n in neighbours:
                    for vl in self.labels[n]:
                        in_groups[(el, vl)].append(n)
            self._in_by_type.append({k: sorted(set(ns)) for k, ns in in_groups.items()})

        # Inverse vertex label list: label -> sorted vertices carrying it.
        inverse: Dict[int, List[int]] = defaultdict(list)
        for v in range(vertex_count):
            for label in self.labels[v]:
                inverse[label].append(v)
        self._inverse_label: Dict[int, List[int]] = {l: sorted(vs) for l, vs in inverse.items()}

        # Predicate index: edge label -> (sorted subjects, sorted objects).
        pred_subjects: Dict[int, Set[int]] = defaultdict(set)
        pred_objects: Dict[int, Set[int]] = defaultdict(set)
        for v in range(vertex_count):
            for el, neighbours in self._out[v].items():
                if neighbours:
                    pred_subjects[el].add(v)
                    pred_objects[el].update(neighbours)
        self._predicate_index: Dict[int, Tuple[List[int], List[int]]] = {
            el: (sorted(pred_subjects[el]), sorted(pred_objects[el]))
            for el in pred_subjects
        }

        # Total degree per vertex (counting multi-labelled edges once per label).
        self._degree: List[int] = [
            sum(len(ns) for ns in self._out[v].values())
            + sum(len(ns) for ns in self._in[v].values())
            for v in range(vertex_count)
        ]

    # ------------------------------------------------------------------ views
    def vertices(self) -> range:
        """All vertex ids."""
        return range(self.vertex_count)

    def vertex_labels(self, vertex: int) -> FrozenSet[int]:
        """Label set of a vertex."""
        return self.labels[vertex]

    def degree(self, vertex: int) -> int:
        """Total (in + out) degree."""
        return self._degree[vertex]

    def edge_labels(self) -> Set[int]:
        """All edge labels present in the graph."""
        return set(self._predicate_index)

    def all_labels(self) -> Set[int]:
        """All vertex labels present in the graph."""
        return set(self._inverse_label)

    def iter_edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over ``(source, edge label, target)`` edges."""
        for v in range(self.vertex_count):
            for el, neighbours in self._out[v].items():
                for n in neighbours:
                    yield (v, el, n)

    # -------------------------------------------------------------- adjacency
    def out_neighbors(self, vertex: int, edge_label: Optional[int] = None) -> List[int]:
        """Outgoing neighbours, optionally restricted to one edge label."""
        if edge_label is None:
            return union_many(self._out[vertex].values())
        return self._out[vertex].get(edge_label, _EMPTY_LIST)

    def in_neighbors(self, vertex: int, edge_label: Optional[int] = None) -> List[int]:
        """Incoming neighbours, optionally restricted to one edge label."""
        if edge_label is None:
            return union_many(self._in[vertex].values())
        return self._in[vertex].get(edge_label, _EMPTY_LIST)

    def neighbors_by_type(
        self,
        vertex: int,
        edge_label: Optional[int],
        vertex_labels: FrozenSet[int],
        outgoing: bool = True,
    ) -> List[int]:
        """Adjacent vertices matching a neighbour type.

        Implements the adjacency look-up rules of Section 4.2:

        * one vertex label + one edge label — direct group look-up,
        * several vertex labels — intersect the per-label groups,
        * blank vertex label — fall back to the per-edge-label list,
        * blank edge label — union over all edge labels (restricted to the
          requested vertex labels when given).
        """
        by_type = self._out_by_type[vertex] if outgoing else self._in_by_type[vertex]
        by_label = self._out[vertex] if outgoing else self._in[vertex]
        if edge_label is not None:
            if not vertex_labels:
                return by_label.get(edge_label, _EMPTY_LIST)
            groups = [by_type.get((edge_label, vl), _EMPTY_LIST) for vl in vertex_labels]
            if len(groups) == 1:
                return groups[0]
            return intersect_many(groups)
        # Blank edge label: union over every edge label.
        if not vertex_labels:
            return union_many(by_label.values())
        per_label: List[List[int]] = []
        for vl in vertex_labels:
            matches = [ns for (el, label), ns in by_type.items() if label == vl]
            per_label.append(union_many(matches))
        if len(per_label) == 1:
            return per_label[0]
        return intersect_many(per_label)

    def has_edge(self, source: int, target: int, edge_label: Optional[int] = None) -> bool:
        """Edge existence test (any label when ``edge_label`` is None)."""
        if edge_label is not None:
            return contains_sorted(self._out[source].get(edge_label, _EMPTY_LIST), target)
        return any(contains_sorted(ns, target) for ns in self._out[source].values())

    def edge_labels_between(self, source: int, target: int) -> List[int]:
        """All edge labels connecting source to target (for predicate variables)."""
        return sorted(
            el for el, ns in self._out[source].items() if contains_sorted(ns, target)
        )

    def neighbor_type_counts(self, vertex: int, outgoing: bool = True) -> Dict[Tuple[int, int], int]:
        """Number of neighbours per (edge label, vertex label) group (NLF filter input)."""
        by_type = self._out_by_type[vertex] if outgoing else self._in_by_type[vertex]
        return {key: len(ns) for key, ns in by_type.items()}

    # ----------------------------------------------------------------- labels
    def vertices_with_label(self, label: int) -> List[int]:
        """Sorted vertices carrying a label (inverse vertex label list)."""
        return self._inverse_label.get(label, _EMPTY_LIST)

    def vertices_with_labels(self, labels: FrozenSet[int]) -> List[int]:
        """Sorted vertices carrying *all* the given labels."""
        if not labels:
            return list(range(self.vertex_count))
        lists = [self.vertices_with_label(label) for label in labels]
        if len(lists) == 1:
            return lists[0]
        return intersect_many(lists)

    def label_frequency(self, labels: FrozenSet[int]) -> int:
        """``freq(g, L(u))`` — number of vertices carrying all the labels."""
        if not labels:
            return self.vertex_count
        if len(labels) == 1:
            return len(self.vertices_with_label(next(iter(labels))))
        return len(self.vertices_with_labels(labels))

    # -------------------------------------------------------- predicate index
    def predicate_subjects(self, edge_label: int) -> List[int]:
        """Sorted vertices with at least one outgoing edge of this label."""
        entry = self._predicate_index.get(edge_label)
        return entry[0] if entry else _EMPTY_LIST

    def predicate_objects(self, edge_label: int) -> List[int]:
        """Sorted vertices with at least one incoming edge of this label."""
        entry = self._predicate_index.get(edge_label)
        return entry[1] if entry else _EMPTY_LIST

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, int]:
        """Size statistics used by Table 1."""
        return {
            "vertices": self.vertex_count,
            "edges": self.edge_count,
            "vertex_labels": len(self._inverse_label),
            "edge_labels": len(self._predicate_index),
        }

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"LabeledGraph(|V|={self.vertex_count}, |E|={self.edge_count})"
