"""Query graph model for the subgraph matching engines.

A :class:`QueryGraph` is the labeled-graph counterpart of a SPARQL basic
graph pattern.  Each :class:`QueryVertex` carries

* ``labels`` — required vertex labels (empty for an untyped variable),
* ``vertex_id`` — a concrete data vertex id when the SPARQL term is a
  constant (the ID attribute of the two-attribute vertex model, Section 4.1),
* ``name`` — the SPARQL variable name (or a synthetic name for constants).

Each :class:`QueryEdge` carries the edge label (``None`` when the predicate
is a variable) and, for predicate variables, the variable name so that the
e-graph homomorphism can report the edge-label mapping ``Me``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.exceptions import GraphError

EMPTY_LABELS: FrozenSet[int] = frozenset()


@dataclass
class QueryVertex:
    """A query vertex."""

    index: int
    name: str
    labels: FrozenSet[int] = EMPTY_LABELS
    vertex_id: Optional[int] = None
    #: True when the vertex corresponds to a SPARQL variable that must appear
    #: in the result (as opposed to a constant we only match against).
    is_variable: bool = True


@dataclass
class QueryEdge:
    """A directed query edge (source -> target)."""

    source: int
    target: int
    label: Optional[int] = None
    predicate_variable: Optional[str] = None

    def endpoints(self) -> Tuple[int, int]:
        """The (source, target) pair."""
        return (self.source, self.target)


class QueryGraph:
    """A small directed multigraph describing the pattern to match."""

    def __init__(self) -> None:
        self.vertices: List[QueryVertex] = []
        self.edges: List[QueryEdge] = []
        self._by_name: Dict[str, int] = {}
        self._out: Dict[int, List[int]] = {}
        self._in: Dict[int, List[int]] = {}

    # ----------------------------------------------------------- construction
    def add_vertex(
        self,
        name: str,
        labels: FrozenSet[int] = EMPTY_LABELS,
        vertex_id: Optional[int] = None,
        is_variable: bool = True,
    ) -> int:
        """Add a vertex (or merge labels into an existing one) and return its index."""
        if name in self._by_name:
            index = self._by_name[name]
            vertex = self.vertices[index]
            vertex.labels = vertex.labels | labels
            if vertex_id is not None:
                if vertex.vertex_id is not None and vertex.vertex_id != vertex_id:
                    raise GraphError(f"conflicting vertex ids for query vertex {name!r}")
                vertex.vertex_id = vertex_id
            return index
        index = len(self.vertices)
        self.vertices.append(QueryVertex(index, name, frozenset(labels), vertex_id, is_variable))
        self._by_name[name] = index
        self._out[index] = []
        self._in[index] = []
        return index

    def add_labels(self, name: str, labels: FrozenSet[int]) -> None:
        """Union extra labels into an existing vertex."""
        index = self._by_name[name]
        self.vertices[index].labels = self.vertices[index].labels | labels

    def add_edge(
        self,
        source: int,
        target: int,
        label: Optional[int] = None,
        predicate_variable: Optional[str] = None,
    ) -> int:
        """Add a directed edge and return its index."""
        edge_index = len(self.edges)
        self.edges.append(QueryEdge(source, target, label, predicate_variable))
        self._out[source].append(edge_index)
        self._in[target].append(edge_index)
        return edge_index

    # ----------------------------------------------------------------- access
    def vertex_index(self, name: str) -> Optional[int]:
        """Index of the vertex with a given name, or None."""
        return self._by_name.get(name)

    def vertex_count(self) -> int:
        """Number of query vertices."""
        return len(self.vertices)

    def edge_count(self) -> int:
        """Number of query edges."""
        return len(self.edges)

    def out_edges(self, vertex: int) -> List[QueryEdge]:
        """Outgoing edges of a vertex."""
        return [self.edges[i] for i in self._out[vertex]]

    def in_edges(self, vertex: int) -> List[QueryEdge]:
        """Incoming edges of a vertex."""
        return [self.edges[i] for i in self._in[vertex]]

    def incident_edges(self, vertex: int) -> List[QueryEdge]:
        """All edges touching a vertex."""
        return self.out_edges(vertex) + self.in_edges(vertex)

    def degree(self, vertex: int) -> int:
        """Total degree of a vertex."""
        return len(self._out[vertex]) + len(self._in[vertex])

    def neighbors(self, vertex: int) -> Set[int]:
        """All vertices adjacent to ``vertex`` (either direction)."""
        result: Set[int] = set()
        for edge in self.out_edges(vertex):
            result.add(edge.target)
        for edge in self.in_edges(vertex):
            result.add(edge.source)
        return result

    def edges_between(self, a: int, b: int) -> List[QueryEdge]:
        """All edges connecting two vertices, in either direction."""
        return [
            edge
            for edge in self.edges
            if (edge.source == a and edge.target == b) or (edge.source == b and edge.target == a)
        ]

    def variable_names(self) -> List[str]:
        """Names of vertices that correspond to SPARQL variables."""
        return [v.name for v in self.vertices if v.is_variable]

    def predicate_variables(self) -> List[str]:
        """Names of predicate variables mentioned by any edge."""
        return sorted({e.predicate_variable for e in self.edges if e.predicate_variable})

    def is_connected(self) -> bool:
        """True when the underlying undirected graph is connected (or empty)."""
        if not self.vertices:
            return True
        seen = {0}
        stack = [0]
        while stack:
            v = stack.pop()
            for n in self.neighbors(v):
                if n not in seen:
                    seen.add(n)
                    stack.append(n)
        return len(seen) == len(self.vertices)

    def connected_components(self) -> List[List[int]]:
        """Vertex indices grouped by connected component."""
        seen: Set[int] = set()
        components: List[List[int]] = []
        for start in range(len(self.vertices)):
            if start in seen:
                continue
            component = []
            stack = [start]
            seen.add(start)
            while stack:
                v = stack.pop()
                component.append(v)
                for n in self.neighbors(v):
                    if n not in seen:
                        seen.add(n)
                        stack.append(n)
            components.append(sorted(component))
        return components

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"QueryGraph(|V|={len(self.vertices)}, |E|={len(self.edges)})"
