"""Per-predicate reachability indexes for transitive property paths.

A :class:`ReachabilityIndex` answers "does vertex ``u`` reach vertex ``v``
over edges of one predicate label?" (and the enumeration forms of that
question) without a BFS per probe.  The build pipeline, all on flat
``array('q')`` arrays in the same discipline as the CSR graph:

1. **vertex slice** — only vertices incident to the predicate participate;
   they are collected sorted in ``verts`` and addressed by local id
   (binary search).
2. **condensation** — an *iterative* Tarjan pass groups the slice into
   strongly connected components (``scc_of`` per local vertex, member
   lists in the ``scc_off``/``scc_members`` CSR).  Tarjan emits an SCC
   only after every SCC it reaches, so emission ids are a reverse
   topological order: every condensation edge goes from a higher SCC id
   to a lower one (the invariant both the interval labelling and the
   closure build lean on).
3. **interval labels** — two GRAIL-style post-order interval labellings of
   the condensation DAG (different child orders).  A DFS rooted at every
   source gives each SCC ``[lo, hi]`` with ``hi`` its post-order rank and
   ``lo`` the minimum rank under it; if ``u`` reaches ``v`` then ``u``'s
   interval contains ``v``'s in *both* labellings.  Non-containment is an
   O(1) certain "no"; containment answers "maybe" and falls through to a
   DFS walk that prunes every branch whose interval excludes the target.
4. **closure postings** (optional) — for predicates whose transitive
   closure fits a byte budget, per-SCC sorted reachable-SCC rows in a
   ``clo_off``/``clo_nbr`` CSR turn positive probes into one binary
   search and enumeration into one slice.  Self-reachability inside an
   SCC is the ``cyclic`` bit (size > 1 or a self-loop), kept out of the
   rows.

:class:`PathIndexManager` owns the per-label indexes in a byte-bounded LRU
(``REPRO_PATH_INDEX_BYTES``; ``0`` disables indexing entirely), falls back
to the module-level BFS kernels for oversized predicates, and — in shared
mode — exports every index through a ``multiprocessing.shared_memory``
manifest (the same pack/attach pattern as
:meth:`repro.graph.labeled_graph.LabeledGraph.export_shared`) so shard
worker processes can attach the labels zero-copy.

The BFS kernels double as the parity oracle: with the budget at 0 every
reachability question is answered by :func:`bfs_reachable` /
:func:`bfs_reaches` over the CSR windows, and the Hypothesis sweep in
``tests/test_property_paths.py`` holds the two implementations equal.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.labeled_graph import LabeledGraph
from repro.utils.stats import CounterBundle

#: Default byte budget of one engine's path-index LRU (64 MiB).
DEFAULT_PATH_INDEX_BYTES = 64 * 1024 * 1024

#: Array fields of one index, in manifest order (all ``array('q')``).
_INDEX_ARRAYS = (
    "verts",
    "scc_of",
    "scc_off",
    "scc_members",
    "cyclic",
    "dag_off",
    "dag_nbr",
    "rdag_off",
    "rdag_nbr",
    "lo1",
    "hi1",
    "lo2",
    "hi2",
)

#: Closure arrays, present only when the closure fast path was built.
_CLOSURE_ARRAYS = ("clo_off", "clo_nbr")


# ------------------------------------------------------------- BFS fallback
def bfs_reachable(
    graph: LabeledGraph, edge_label: int, start: int, reverse: bool = False
) -> List[int]:
    """Vertices reachable from ``start`` in 1+ hops of one predicate.

    The scalar-twin kernel the index is measured against (and the fallback
    when indexing is disabled or a predicate exceeds the byte budget).
    ``reverse`` walks incoming edges (the ``reaching`` direction).  The
    result is sorted; ``start`` itself appears only when it lies on a
    cycle.
    """
    window = graph.in_window if reverse else graph.out_window
    seen: Set[int] = set()
    frontier = [start]
    while frontier:
        next_frontier: List[int] = []
        for vertex in frontier:
            base, lo, hi = window(vertex, edge_label)
            for i in range(lo, hi):
                neighbor = base[i]
                if neighbor not in seen:
                    seen.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return sorted(seen)


def bfs_reaches(graph: LabeledGraph, edge_label: int, source: int, target: int) -> bool:
    """True when ``source`` reaches ``target`` in 1+ hops of one predicate."""
    seen: Set[int] = set()
    frontier = [source]
    while frontier:
        next_frontier: List[int] = []
        for vertex in frontier:
            base, lo, hi = graph.out_window(vertex, edge_label)
            for i in range(lo, hi):
                neighbor = base[i]
                if neighbor == target:
                    return True
                if neighbor not in seen:
                    seen.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return False


# ------------------------------------------------------------------- counters
@dataclass
class PathIndexCounters(CounterBundle):
    """Counters behind ``stats()["path_index"]``."""

    #: Index builds (cache misses that constructed an index).
    builds: int = 0
    #: Probes answered by an already-cached index.
    hits: int = 0
    #: Probes that found no cached index for their label.
    misses: int = 0
    #: Indexes dropped to keep the LRU under its byte budget.
    evictions: int = 0
    #: Predicates whose freshly built index exceeded the whole budget
    #: (discarded; the label is pinned to the BFS fallback).
    oversized: int = 0
    #: Probes answered by the BFS kernels (budget 0 or oversized label).
    bfs_fallbacks: int = 0
    #: Positive probes that needed the pruned DFS walk over the DAG.
    pruned_walks: int = 0
    #: Negative probes settled by the interval labels alone (O(1) "no").
    interval_rejects: int = 0
    #: Probes answered from materialized closure postings.
    closure_hits: int = 0
    #: Admission decisions (see :mod:`repro.engine.cache_admission`): a
    #: freshly built index is only cached when its label's request
    #: frequency beats the LRU victim's; a rejected index still answers
    #: the probe that built it, it just isn't retained.
    admission_accepts: int = 0
    admission_rejects: int = 0
    sketch_resets: int = 0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy (merged into the ``path_index`` stats payload)."""
        return self.as_dict()


# ---------------------------------------------------------------------- index
class ReachabilityIndex:
    """Interval-labelled condensation of one predicate's edge set."""

    __slots__ = _INDEX_ARRAYS + _CLOSURE_ARRAYS + (
        "edge_label",
        "scc_count",
        "counters",
    )

    def __init__(self) -> None:
        self.counters: Optional[PathIndexCounters] = None
        self.clo_off: Optional[Sequence[int]] = None
        self.clo_nbr: Optional[Sequence[int]] = None

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        graph: LabeledGraph,
        edge_label: int,
        closure_entry_limit: int = 0,
        counters: Optional[PathIndexCounters] = None,
    ) -> "ReachabilityIndex":
        """Condense one predicate's edges and label the condensation DAG.

        ``closure_entry_limit`` bounds the materialized transitive-closure
        postings (in entries); the closure build aborts — leaving the index
        interval-only — as soon as it would exceed the bound.
        """
        index = cls()
        index.edge_label = edge_label
        index.counters = counters

        subjects = graph.predicate_subjects(edge_label)
        objects = graph.predicate_objects(edge_label)
        verts = sorted(set(subjects) | set(objects))
        index.verts = array("q", verts)
        n = len(verts)
        local = {vertex: i for i, vertex in enumerate(verts)}

        # Local adjacency CSR over the vertex slice.
        adj_off = array("q", bytes(8 * (n + 1)))
        adj_nbr = array("q")
        self_loop = bytearray(n)
        for u, vertex in enumerate(verts):
            base, lo, hi = graph.out_window(vertex, edge_label)
            for i in range(lo, hi):
                target = local[base[i]]
                adj_nbr.append(target)
                if target == u:
                    self_loop[u] = 1
            adj_off[u + 1] = len(adj_nbr)

        index._condense(n, adj_off, adj_nbr, self_loop)
        index._label_intervals()
        index._materialize_closure(closure_entry_limit)
        return index

    def _condense(
        self, n: int, adj_off: array, adj_nbr: array, self_loop: bytearray
    ) -> None:
        """Iterative Tarjan SCC pass + condensation CSRs (both directions)."""
        UNVISITED = -1
        scc_of = array("q", [UNVISITED] * n)
        disc = array("q", [UNVISITED] * n)
        low = array("q", bytes(8 * n))
        on_stack = bytearray(n)
        scc_stack: List[int] = []
        scc_count = 0
        clock = 0
        # Explicit DFS stack of (vertex, next-edge cursor) frames.
        for root in range(n):
            if disc[root] != UNVISITED:
                continue
            frames: List[List[int]] = [[root, adj_off[root]]]
            disc[root] = low[root] = clock
            clock += 1
            scc_stack.append(root)
            on_stack[root] = 1
            while frames:
                frame = frames[-1]
                u = frame[0]
                cursor = frame[1]
                if cursor < adj_off[u + 1]:
                    frame[1] = cursor + 1
                    v = adj_nbr[cursor]
                    if disc[v] == UNVISITED:
                        disc[v] = low[v] = clock
                        clock += 1
                        scc_stack.append(v)
                        on_stack[v] = 1
                        frames.append([v, adj_off[v]])
                    elif on_stack[v]:
                        if disc[v] < low[u]:
                            low[u] = disc[v]
                    continue
                frames.pop()
                if frames:
                    parent = frames[-1][0]
                    if low[u] < low[parent]:
                        low[parent] = low[u]
                if low[u] == disc[u]:
                    # Root of an SCC: pop its members.  Emission order is
                    # reverse topological — every SCC this one reaches has
                    # already been emitted, so condensation edges always go
                    # from higher SCC id to lower.
                    while True:
                        w = scc_stack.pop()
                        on_stack[w] = 0
                        scc_of[w] = scc_count
                        if w == u:
                            break
                    scc_count += 1

        self.scc_of = scc_of
        self.scc_count = scc_count

        # Member lists (counting sort — scc ids are dense).
        scc_off = array("q", bytes(8 * (scc_count + 1)))
        for u in range(n):
            scc_off[scc_of[u] + 1] += 1
        for s in range(scc_count):
            scc_off[s + 1] += scc_off[s]
        members = array("q", bytes(8 * n))
        cursor_arr = array("q", scc_off[:scc_count])
        for u in range(n):  # ascending u => member runs stay sorted
            s = scc_of[u]
            members[cursor_arr[s]] = u
            cursor_arr[s] += 1
        self.scc_off = scc_off
        self.scc_members = members

        # Cyclic bit: size > 1 or a self-loop member.
        cyclic = array("q", bytes(8 * scc_count))
        for s in range(scc_count):
            if scc_off[s + 1] - scc_off[s] > 1:
                cyclic[s] = 1
        for u in range(n):
            if self_loop[u]:
                cyclic[scc_of[u]] = 1
        self.cyclic = cyclic

        # Condensation DAG edges, deduplicated, as forward + reverse CSRs.
        edges: Set[Tuple[int, int]] = set()
        for u in range(n):
            su = scc_of[u]
            for i in range(adj_off[u], adj_off[u + 1]):
                sv = scc_of[adj_nbr[i]]
                if su != sv:
                    edges.add((su, sv))
        self.dag_off, self.dag_nbr = _edge_csr(scc_count, sorted(edges))
        self.rdag_off, self.rdag_nbr = _edge_csr(
            scc_count, sorted((v, u) for (u, v) in edges)
        )

    def _label_intervals(self) -> None:
        """Two GRAIL post-order interval labellings (opposite child orders)."""
        self.lo1, self.hi1 = _grail_labels(
            self.scc_count, self.dag_off, self.dag_nbr, self.rdag_off, reverse=False
        )
        self.lo2, self.hi2 = _grail_labels(
            self.scc_count, self.dag_off, self.dag_nbr, self.rdag_off, reverse=True
        )

    def _materialize_closure(self, entry_limit: int) -> None:
        """Per-SCC reachable-SCC postings, if they fit ``entry_limit``.

        SCC ids are reverse topological (edges go high → low), so an
        ascending pass can union each SCC's successor rows, which are
        already complete.
        """
        if entry_limit <= 0:
            return
        dag_off, dag_nbr = self.dag_off, self.dag_nbr
        rows: List[array] = []
        total = 0
        for s in range(self.scc_count):
            reach: Set[int] = set()
            for i in range(dag_off[s], dag_off[s + 1]):
                succ = dag_nbr[i]
                reach.add(succ)
                reach.update(rows[succ])
            row = array("q", sorted(reach))
            total += len(row)
            if total > entry_limit:
                return
            rows.append(row)
        clo_off = array("q", bytes(8 * (self.scc_count + 1)))
        clo_nbr = array("q", bytes(8 * total))
        cursor = 0
        for s, row in enumerate(rows):
            clo_nbr[cursor:cursor + len(row)] = row
            cursor += len(row)
            clo_off[s + 1] = cursor
        self.clo_off = clo_off
        self.clo_nbr = clo_nbr

    # ------------------------------------------------------------------- size
    @property
    def nbytes(self) -> int:
        """Resident byte size of the flat arrays (what the LRU budgets)."""
        total = 0
        for name in _INDEX_ARRAYS + _CLOSURE_ARRAYS:
            values = getattr(self, name)
            if values is not None:
                total += 8 * len(values)
        return total

    # ----------------------------------------------------------------- probes
    def _local(self, vertex: int) -> int:
        """Local id of a data vertex, or -1 when the predicate never sees it."""
        verts = self.verts
        i = bisect_left(verts, vertex)
        if i < len(verts) and verts[i] == vertex:
            return i
        return -1

    def _interval_contains(self, ancestor: int, descendant: int) -> bool:
        """Necessary condition for ``ancestor`` reaching ``descendant``."""
        return (
            self.lo1[ancestor] <= self.lo1[descendant]
            and self.hi1[descendant] <= self.hi1[ancestor]
            and self.lo2[ancestor] <= self.lo2[descendant]
            and self.hi2[descendant] <= self.hi2[ancestor]
        )

    def _scc_reaches(self, source: int, target: int) -> bool:
        """Does SCC ``source`` reach SCC ``target`` (1+ condensation edges)?"""
        counters = self.counters
        if self.clo_off is not None:
            if counters is not None:
                counters.closure_hits += 1
            lo, hi = self.clo_off[source], self.clo_off[source + 1]
            i = bisect_left(self.clo_nbr, target, lo, hi)
            return i < hi and self.clo_nbr[i] == target
        if not self._interval_contains(source, target):
            if counters is not None:
                counters.interval_rejects += 1
            return False
        # Interval "maybe": DFS from source, pruning interval-excluded arms.
        if counters is not None:
            counters.pruned_walks += 1
        dag_off, dag_nbr = self.dag_off, self.dag_nbr
        stack = [source]
        seen: Set[int] = {source}
        while stack:
            s = stack.pop()
            for i in range(dag_off[s], dag_off[s + 1]):
                succ = dag_nbr[i]
                if succ == target:
                    return True
                if succ not in seen and self._interval_contains(succ, target):
                    seen.add(succ)
                    stack.append(succ)
        return False

    def _scc_descendants(self, source: int) -> List[int]:
        """SCC ids reachable from ``source`` over 1+ condensation edges."""
        if self.clo_off is not None:
            if self.counters is not None:
                self.counters.closure_hits += 1
            lo, hi = self.clo_off[source], self.clo_off[source + 1]
            return list(self.clo_nbr[lo:hi])
        dag_off, dag_nbr = self.dag_off, self.dag_nbr
        seen: Set[int] = set()
        stack = [source]
        while stack:
            s = stack.pop()
            for i in range(dag_off[s], dag_off[s + 1]):
                succ = dag_nbr[i]
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return sorted(seen)

    def _scc_ancestors(self, target: int) -> List[int]:
        """SCC ids that reach ``target`` (walk of the reverse condensation)."""
        rdag_off, rdag_nbr = self.rdag_off, self.rdag_nbr
        seen: Set[int] = set()
        stack = [target]
        while stack:
            s = stack.pop()
            for i in range(rdag_off[s], rdag_off[s + 1]):
                pred = rdag_nbr[i]
                if pred not in seen:
                    seen.add(pred)
                    stack.append(pred)
        return sorted(seen)

    def _expand(self, sccs: Sequence[int], include: Optional[int]) -> List[int]:
        """Member data vertices of the SCCs (+ one cyclic SCC), sorted."""
        scc_off, members, verts = self.scc_off, self.scc_members, self.verts
        result: List[int] = []
        ids = list(sccs)
        if include is not None:
            ids.append(include)
        for s in ids:
            result.extend(
                verts[members[i]] for i in range(scc_off[s], scc_off[s + 1])
            )
        result.sort()
        return result

    def reaches(self, source: int, target: int) -> bool:
        """True when ``source`` reaches ``target`` in 1+ predicate hops."""
        lu = self._local(source)
        if lu < 0:
            return False
        lv = self._local(target)
        if lv < 0:
            return False
        su, sv = self.scc_of[lu], self.scc_of[lv]
        if su == sv:
            return bool(self.cyclic[su])
        return self._scc_reaches(su, sv)

    def reachable_from(self, source: int) -> List[int]:
        """Sorted data vertices reachable from ``source`` in 1+ hops."""
        lu = self._local(source)
        if lu < 0:
            return []
        su = self.scc_of[lu]
        own = su if self.cyclic[su] else None
        return self._expand(self._scc_descendants(su), own)

    def reaching(self, target: int) -> List[int]:
        """Sorted data vertices that reach ``target`` in 1+ hops."""
        lv = self._local(target)
        if lv < 0:
            return []
        sv = self.scc_of[lv]
        own = sv if self.cyclic[sv] else None
        return self._expand(self._scc_ancestors(sv), own)

    # ---------------------------------------------------------- shared memory
    def export_shared(self, name: Optional[str] = None) -> "SharedIndexHandle":
        """Pack the flat arrays into one shared-memory segment.

        Same contract as :meth:`LabeledGraph.export_shared`: the returned
        handle owns the segment, its picklable manifest is everything a
        worker needs to :meth:`attach_shared`, and the creator unlinks the
        handle when the index is retired.
        """
        from multiprocessing import shared_memory

        names = list(_INDEX_ARRAYS)
        if self.clo_off is not None:
            names.extend(_CLOSURE_ARRAYS)
        layout: Dict[str, Tuple[int, int]] = {}
        total = 0
        for array_name in names:
            values = getattr(self, array_name)
            layout[array_name] = (total, len(values))
            total += 8 * len(values)
        segment = shared_memory.SharedMemory(name=name, create=True, size=max(total, 8))
        for array_name in names:
            offset, count = layout[array_name]
            values = getattr(self, array_name)
            if count:
                segment.buf[offset:offset + 8 * count] = array("q", values).tobytes()
        manifest = SharedIndexManifest(
            segment=segment.name,
            edge_label=self.edge_label,
            scc_count=self.scc_count,
            arrays=layout,
        )
        return SharedIndexHandle(segment, manifest)

    @classmethod
    def attach_shared(cls, manifest: "SharedIndexManifest"):
        """Rebuild a read-only index over a shared segment (zero-copy views).

        Returns ``(index, shm)``; the caller keeps ``shm`` alive for the
        index's lifetime and must not unlink it (the exporter owns it).
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=manifest.segment)
        buf = shm.buf

        index = cls()
        index.edge_label = manifest.edge_label
        index.scc_count = manifest.scc_count
        for array_name in _INDEX_ARRAYS + _CLOSURE_ARRAYS:
            entry = manifest.arrays.get(array_name)
            if entry is None:
                continue
            offset, count = entry
            setattr(index, array_name, buf[offset:offset + 8 * count].cast("q"))
        return index, shm


def _edge_csr(node_count: int, edges: Sequence[Tuple[int, int]]) -> Tuple[array, array]:
    """Offset/neighbour arrays from sorted, deduplicated edge pairs."""
    off = array("q", bytes(8 * (node_count + 1)))
    nbr = array("q", bytes(8 * len(edges)))
    for i, (u, v) in enumerate(edges):
        off[u + 1] += 1
        nbr[i] = v
    for u in range(node_count):
        off[u + 1] += off[u]
    return off, nbr


def _grail_labels(
    scc_count: int,
    dag_off: array,
    dag_nbr: array,
    rdag_off: array,
    reverse: bool,
) -> Tuple[array, array]:
    """One GRAIL labelling: post-order ``hi`` ranks, subtree-minimum ``lo``.

    ``reverse`` flips both the root order and each node's child order, so
    the two labellings disagree wherever the DAG branches — what makes the
    conjunction of the two containment checks a much tighter filter than
    either alone.  ``lo`` absorbs the labels of already-visited children
    too (non-tree DAG edges), preserving the containment guarantee:
    ``u`` reaches ``v`` ⇒ ``[lo[v], hi[v]] ⊆ [lo[u], hi[u]]``.
    """
    lo = array("q", bytes(8 * scc_count))
    hi = array("q", [-1] * scc_count)
    rank = 0
    roots = [s for s in range(scc_count) if rdag_off[s + 1] == rdag_off[s]]
    if reverse:
        roots.reverse()
    for root in roots:
        if hi[root] >= 0:
            continue
        # Frames: [node, cursor, low-so-far]; cursor walks the child window.
        frames: List[List[int]] = [[root, 0, scc_count]]
        while frames:
            frame = frames[-1]
            s, cursor, low = frame
            begin, end = dag_off[s], dag_off[s + 1]
            if cursor < end - begin:
                frame[1] = cursor + 1
                child = dag_nbr[end - 1 - cursor] if reverse else dag_nbr[begin + cursor]
                if hi[child] >= 0:
                    # Already labelled (shared descendant): absorb its lo.
                    if lo[child] < frame[2]:
                        frame[2] = lo[child]
                    continue
                frames.append([child, 0, scc_count])
                continue
            frames.pop()
            hi[s] = rank
            lo[s] = min(frame[2], rank)
            rank += 1
            if frames and lo[s] < frames[-1][2]:
                frames[-1][2] = lo[s]
    return lo, hi


@dataclass(frozen=True)
class SharedIndexManifest:
    """Everything a process needs to attach one exported index.

    Picklable and small: the segment name, the predicate label, and per
    flat array its byte offset and element count (8-byte signed integers).
    """

    segment: str
    edge_label: int
    scc_count: int
    arrays: Dict[str, Tuple[int, int]]


def _release_index_segment(segment) -> None:
    """Close and unlink a shared-memory segment, tolerating repeats."""
    try:
        segment.close()
    except (BufferError, OSError):  # pragma: no cover - platform cleanup races
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


class SharedIndexHandle:
    """Owner of one exported index segment (finalizer-backed cleanup)."""

    def __init__(self, segment, manifest: SharedIndexManifest):
        import weakref

        self.shm = segment
        self.manifest = manifest
        self._finalizer = weakref.finalize(self, _release_index_segment, segment)

    @property
    def name(self) -> str:
        """The shared-memory segment name (``/dev/shm`` entry on Linux)."""
        return self.manifest.segment

    def unlink(self) -> None:
        """Close the mapping and remove the segment. Idempotent."""
        self._finalizer()

    close = unlink


# -------------------------------------------------------------------- manager
class PathIndexManager:
    """Byte-bounded LRU of per-predicate reachability indexes.

    One manager per engine: indexes build lazily on the first transitive
    probe of a predicate, the LRU evicts whole indexes to stay under
    ``budget_bytes``, and a predicate whose index alone exceeds the budget
    is pinned to the BFS fallback (built once, measured, discarded).  With
    ``budget_bytes=0`` every probe takes the BFS kernels — the
    oracle-comparable fallback CI exercises via ``REPRO_PATH_INDEX_BYTES=0``.

    ``shared=True`` (process execution mode) additionally exports each
    index through a shared-memory manifest; :meth:`manifests` hands the
    picklable attachment records to shard workers, which rebuild the
    flat-array views zero-copy via :meth:`ReachabilityIndex.attach_shared`.
    Segments are unlinked on eviction and on :meth:`close`.

    The closure fast path gets a fixed share of the budget per index (an
    index whose interval labels fit but whose closure would not simply
    skips the closure), so small predicates answer probes from sorted
    postings while large ones stay on interval checks + pruned walks.
    """

    #: Fraction of the byte budget one index's closure postings may claim.
    CLOSURE_SHARE = 0.25

    def __init__(
        self,
        graph: LabeledGraph,
        budget_bytes: int,
        shared: bool = False,
        admission=None,
    ) -> None:
        self.graph = graph
        self.budget_bytes = budget_bytes
        self.shared = shared
        #: Optional :class:`~repro.engine.cache_admission.TinyLfuAdmission`
        #: (injected by the engine — this module stays engine-agnostic):
        #: when inserting a fresh index would overflow the budget, it must
        #: beat the LRU victim label's request frequency to be retained.
        self.admission = admission
        self.counters = PathIndexCounters()
        self._indexes: "OrderedDict[int, ReachabilityIndex]" = OrderedDict()
        self._handles: Dict[int, SharedIndexHandle] = {}
        self._too_big: Set[int] = set()
        self._bytes = 0

    # ------------------------------------------------------------------ cache
    @property
    def bytes_held(self) -> int:
        """Resident bytes across all cached indexes."""
        return self._bytes

    def index_for(self, edge_label: int) -> Optional[ReachabilityIndex]:
        """The cached (or freshly built) index, or None for BFS fallback."""
        if self.budget_bytes <= 0 or edge_label in self._too_big:
            self.counters.bfs_fallbacks += 1
            return None
        if self.admission is not None:
            self.admission.record_access(edge_label)
        index = self._indexes.get(edge_label)
        if index is not None:
            self.counters.hits += 1
            self._indexes.move_to_end(edge_label)
            return index
        self.counters.misses += 1
        closure_limit = int(self.budget_bytes * self.CLOSURE_SHARE) // 8
        index = ReachabilityIndex.build(
            self.graph, edge_label, closure_limit, self.counters
        )
        self.counters.builds += 1
        if index.nbytes > self.budget_bytes:
            self.counters.oversized += 1
            self._too_big.add(edge_label)
            self.counters.bfs_fallbacks += 1
            return None
        if (
            self.admission is not None
            and self._bytes + index.nbytes > self.budget_bytes
            and self._indexes
        ):
            # Inserting would evict: the new label must beat the LRU
            # victim's request frequency, else the probe uses the fresh
            # index once and the resident indexes stay put.
            victim_label = next(iter(self._indexes))
            if not self.admission.admit(edge_label, victim_label):
                self.counters.admission_rejects += 1
                return index
            self.counters.admission_accepts += 1
        self._indexes[edge_label] = index
        self._bytes += index.nbytes
        if self.shared:
            self._handles[edge_label] = index.export_shared()
        while self._bytes > self.budget_bytes and len(self._indexes) > 1:
            victim_label, victim = self._indexes.popitem(last=False)
            self._bytes -= victim.nbytes
            self.counters.evictions += 1
            handle = self._handles.pop(victim_label, None)
            if handle is not None:
                handle.unlink()
        return index

    def manifests(self) -> Dict[int, SharedIndexManifest]:
        """Attachment manifests of every exported index (shared mode only)."""
        return {label: handle.manifest for label, handle in self._handles.items()}

    # ----------------------------------------------------------------- probes
    def reaches(self, edge_label: int, source: int, target: int) -> bool:
        """1+ hop reachability probe (index or BFS fallback)."""
        index = self.index_for(edge_label)
        if index is None:
            return bfs_reaches(self.graph, edge_label, source, target)
        return index.reaches(source, target)

    def reachable_from(self, edge_label: int, source: int) -> List[int]:
        """Sorted vertices reachable from ``source`` in 1+ hops."""
        index = self.index_for(edge_label)
        if index is None:
            return bfs_reachable(self.graph, edge_label, source)
        return index.reachable_from(source)

    def reaching(self, edge_label: int, target: int) -> List[int]:
        """Sorted vertices reaching ``target`` in 1+ hops."""
        index = self.index_for(edge_label)
        if index is None:
            return bfs_reachable(self.graph, edge_label, target, reverse=True)
        return index.reaching(target)

    # -------------------------------------------------------------- lifecycle
    def stats(self) -> Dict[str, object]:
        """The ``stats()["path_index"]`` payload."""
        if self.admission is not None:
            self.counters.sketch_resets = self.admission.sketch_resets
        return {
            "budget_bytes": self.budget_bytes,
            "entries": len(self._indexes),
            "bytes": self._bytes,
            "shared": self.shared,
            **self.counters.snapshot(),
        }

    def clear(self) -> None:
        """Drop every cached index (and unlink exported segments)."""
        self._indexes.clear()
        self._too_big.clear()
        if self.admission is not None:
            self.admission.clear()
        self._bytes = 0
        for handle in self._handles.values():
            handle.unlink()
        self._handles.clear()

    close = clear
