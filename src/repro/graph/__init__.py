"""Labeled graph storage and RDF-to-graph transformations."""

from repro.graph.labeled_graph import LabeledGraph, GraphBuilder
from repro.graph.query_graph import QueryGraph, QueryVertex, QueryEdge
from repro.graph.transform import (
    direct_transform,
    type_aware_transform,
    direct_transform_query,
    type_aware_transform_query,
    TransformStats,
)

__all__ = [
    "LabeledGraph",
    "GraphBuilder",
    "QueryGraph",
    "QueryVertex",
    "QueryEdge",
    "direct_transform",
    "type_aware_transform",
    "direct_transform_query",
    "type_aware_transform_query",
    "TransformStats",
]
