"""Labeled graph storage, RDF-to-graph transformations, reachability."""

from repro.graph.labeled_graph import LabeledGraph, GraphBuilder
from repro.graph.query_graph import QueryGraph, QueryVertex, QueryEdge
from repro.graph.reachability import (
    PathIndexManager,
    ReachabilityIndex,
    bfs_reachable,
    bfs_reaches,
)
from repro.graph.transform import (
    direct_transform,
    type_aware_transform,
    direct_transform_query,
    type_aware_transform_query,
    TransformStats,
)

__all__ = [
    "LabeledGraph",
    "GraphBuilder",
    "PathIndexManager",
    "QueryGraph",
    "QueryVertex",
    "QueryEdge",
    "ReachabilityIndex",
    "bfs_reachable",
    "bfs_reaches",
    "direct_transform",
    "type_aware_transform",
    "direct_transform_query",
    "type_aware_transform_query",
    "TransformStats",
]
