"""Baseline RDF engines the paper compares against (Section 7.1).

* :class:`~repro.baselines.rdf3x.RDF3XEngine` — RDF-3X-style: six sorted
  permutation indexes, per-pattern scans joined in selectivity order.
* :class:`~repro.baselines.triplebit.TripleBitEngine` — TripleBit-style:
  predicate-wise vertical partitioning with sorted (S,O)/(O,S) columns.
* :class:`~repro.baselines.bitmap_engine.BitmapEngine` — the "System-X"
  stand-in: per-predicate adjacency maps probed with index-nested-loop joins.
"""

from repro.baselines.rdf3x import RDF3XEngine
from repro.baselines.triplebit import TripleBitEngine
from repro.baselines.bitmap_engine import BitmapEngine

__all__ = ["RDF3XEngine", "TripleBitEngine", "BitmapEngine"]
