"""TripleBit-style baseline engine.

TripleBit (Yuan et al., VLDB 2013) stores the triple table column-wise,
partitioned by predicate, with compact (S,O) chunks sorted both by subject
and by object so that either end of a predicate can be scanned in order.

This reproduction keeps the same storage shape:

* :class:`VerticalPartitionIndex` — for every predicate two sorted arrays,
  ``by_subject`` and ``by_object``, plus a subject→predicates map used when
  the predicate itself is a variable,
* BGP evaluation via *scan-then-join*, like the RDF-3X baseline — the
  defining characteristic shared by both systems is that each triple pattern
  is resolved against the storage independently and the intermediate results
  are joined, so cost follows the scanned volume rather than the size of the
  matched subgraph region.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from itertools import islice
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.join import (
    decode_bindings,
    predicate_variables_of,
    scan_join_bgp,
)
from repro.engine.base import BGPSolver, Engine
from repro.rdf.store import TripleStore
from repro.sparql import expressions as expr
from repro.sparql.ast import TriplePattern
from repro.sparql.results import Binding


class VerticalPartitionIndex:
    """Predicate-wise vertical partitions with doubly sorted (S,O) columns."""

    def __init__(self, triples: Iterable[Tuple[int, int, int]]):
        by_subject: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        by_object: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        size = 0
        for s, p, o in triples:
            by_subject[p].append((s, o))
            by_object[p].append((o, s))
            size += 1
        self._by_subject = {p: sorted(rows) for p, rows in by_subject.items()}
        self._by_object = {p: sorted(rows) for p, rows in by_object.items()}
        self.size = size

    @property
    def predicates(self) -> List[int]:
        """All predicate ids present in the data."""
        return sorted(self._by_subject)

    def _rows_for(
        self, predicate: int, subject: Optional[int], obj: Optional[int]
    ) -> Iterable[Tuple[int, int, int]]:
        """Scan one predicate partition with optional S/O restrictions."""
        if subject is not None:
            rows = self._by_subject.get(predicate, [])
            low = bisect_left(rows, (subject, -1))
            high = bisect_right(rows, (subject, float("inf")))
            for s, o in rows[low:high]:
                if obj is None or o == obj:
                    yield (s, predicate, o)
        elif obj is not None:
            rows = self._by_object.get(predicate, [])
            low = bisect_left(rows, (obj, -1))
            high = bisect_right(rows, (obj, float("inf")))
            for o, s in rows[low:high]:
                yield (s, predicate, o)
        else:
            for s, o in self._by_subject.get(predicate, []):
                yield (s, predicate, o)

    def scan(
        self, subject: Optional[int], predicate: Optional[int], obj: Optional[int]
    ) -> Iterable[Tuple[int, int, int]]:
        """Scan matching triples; a variable predicate unions all partitions."""
        if predicate is not None:
            yield from self._rows_for(predicate, subject, obj)
            return
        for partition in self.predicates:
            yield from self._rows_for(partition, subject, obj)

    def estimate(
        self, subject: Optional[int], predicate: Optional[int], obj: Optional[int]
    ) -> int:
        """Cardinality estimate from the partition sizes."""
        if predicate is not None:
            rows = self._by_subject.get(predicate, [])
            if subject is None and obj is None:
                return len(rows)
            if subject is not None:
                low = bisect_left(rows, (subject, -1))
                high = bisect_right(rows, (subject, float("inf")))
                return high - low
            inverted = self._by_object.get(predicate, [])
            low = bisect_left(inverted, (obj, -1))
            high = bisect_right(inverted, (obj, float("inf")))
            return high - low
        if subject is None and obj is None:
            return self.size
        # Variable predicate with a bound endpoint: sum over partitions.
        return sum(
            self.estimate(subject, partition, obj) for partition in self.predicates
        )


class TripleBitBGPSolver(BGPSolver):
    """Scan-then-join BGP evaluation over the vertical partitions."""

    def __init__(self, index: VerticalPartitionIndex, store: TripleStore):
        self.index = index
        self.store = store

    def solve(
        self,
        patterns: Sequence[TriplePattern],
        cheap_filters: Sequence[expr.Expression] = (),
        limit_hint: Optional[int] = None,
    ) -> Iterable[Binding]:
        id_bindings = scan_join_bgp(
            patterns, self.store.dictionary, self.index.scan, self.index.estimate
        )
        decoded = decode_bindings(
            id_bindings, self.store.dictionary, predicate_variables_of(patterns)
        )
        yield from decoded if limit_hint is None else islice(decoded, limit_hint)


class TripleBitEngine(Engine):
    """TripleBit-style engine: vertical partitioning + scan-then-join."""

    name = "TripleBit"
    supports_optional = False

    def __init__(self) -> None:
        super().__init__()
        self._index: Optional[VerticalPartitionIndex] = None

    def load(self, store: TripleStore) -> None:
        self._store = store
        self._index = VerticalPartitionIndex(store.iter_triples())

    def bgp_solver(self) -> TripleBitBGPSolver:
        if self._index is None:
            raise RuntimeError(f"{self.name}: load() must be called before querying")
        return TripleBitBGPSolver(self._index, self.store)
