"""Bitmap-index baseline engine (the paper's anonymized "System-X" stand-in).

System-X is described only as "a popular RDF engine exploiting bitmap
indexing".  Its observable behaviour in the paper's tables is that of an
index-driven engine: essentially constant elapsed time on selective
("constant solution") queries regardless of dataset size, but poor
performance on the analytical join queries Q2 and Q9.

This stand-in reproduces that profile with per-predicate adjacency maps
(subject → objects, object → subjects — conceptually bitmaps over the node id
space) evaluated with selectivity-ordered index-nested-loop joins: bound
values probe the maps directly, so selective queries never touch more than a
handful of postings, while large joins degenerate into many probes.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import islice
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.baselines.join import (
    decode_bindings,
    nested_loop_bgp,
    predicate_variables_of,
)
from repro.engine.base import BGPSolver, Engine
from repro.rdf.store import TripleStore
from repro.sparql import expressions as expr
from repro.sparql.ast import TriplePattern
from repro.sparql.results import Binding


class BitmapIndex:
    """Per-predicate adjacency maps over dictionary-encoded ids."""

    def __init__(self, triples: Iterable[Tuple[int, int, int]]):
        self._so: Dict[int, Dict[int, List[int]]] = defaultdict(dict)
        self._os: Dict[int, Dict[int, List[int]]] = defaultdict(dict)
        self._pred_size: Dict[int, int] = defaultdict(int)
        self.size = 0
        grouped_so: Dict[int, Dict[int, Set[int]]] = defaultdict(lambda: defaultdict(set))
        grouped_os: Dict[int, Dict[int, Set[int]]] = defaultdict(lambda: defaultdict(set))
        for s, p, o in triples:
            grouped_so[p][s].add(o)
            grouped_os[p][o].add(s)
            self._pred_size[p] += 1
            self.size += 1
        for p, mapping in grouped_so.items():
            self._so[p] = {s: sorted(objs) for s, objs in mapping.items()}
        for p, mapping in grouped_os.items():
            self._os[p] = {o: sorted(subs) for o, subs in mapping.items()}

    @property
    def predicates(self) -> List[int]:
        """All predicate ids present in the data."""
        return sorted(self._pred_size)

    def scan(
        self, subject: Optional[int], predicate: Optional[int], obj: Optional[int]
    ) -> Iterable[Tuple[int, int, int]]:
        """Probe the bitmaps; a variable predicate iterates all of them."""
        predicates = [predicate] if predicate is not None else self.predicates
        for p in predicates:
            if subject is not None:
                for o in self._so.get(p, {}).get(subject, []):
                    if obj is None or o == obj:
                        yield (subject, p, o)
            elif obj is not None:
                for s in self._os.get(p, {}).get(obj, []):
                    yield (s, p, obj)
            else:
                for s, objects in self._so.get(p, {}).items():
                    for o in objects:
                        yield (s, p, o)

    def estimate(
        self, subject: Optional[int], predicate: Optional[int], obj: Optional[int]
    ) -> int:
        """Cardinality estimate for ordering the nested-loop join."""
        if predicate is not None:
            if subject is not None:
                return len(self._so.get(predicate, {}).get(subject, []))
            if obj is not None:
                return len(self._os.get(predicate, {}).get(obj, []))
            return self._pred_size.get(predicate, 0)
        if subject is None and obj is None:
            return self.size
        return sum(self.estimate(subject, p, obj) for p in self.predicates)


class BitmapBGPSolver(BGPSolver):
    """Index-nested-loop BGP evaluation over the bitmap index."""

    def __init__(self, index: BitmapIndex, store: TripleStore):
        self.index = index
        self.store = store

    def solve(
        self,
        patterns: Sequence[TriplePattern],
        cheap_filters: Sequence[expr.Expression] = (),
        limit_hint: Optional[int] = None,
    ) -> Iterable[Binding]:
        id_bindings = nested_loop_bgp(
            patterns, self.store.dictionary, self.index.scan, self.index.estimate
        )
        decoded = decode_bindings(
            id_bindings, self.store.dictionary, predicate_variables_of(patterns)
        )
        yield from decoded if limit_hint is None else islice(decoded, limit_hint)


class BitmapEngine(Engine):
    """Bitmap-index engine: the commercial "System-X" stand-in."""

    name = "System-X*"
    supports_optional = True

    def __init__(self) -> None:
        super().__init__()
        self._index: Optional[BitmapIndex] = None

    def load(self, store: TripleStore) -> None:
        self._store = store
        self._index = BitmapIndex(store.iter_triples())

    def bgp_solver(self) -> BitmapBGPSolver:
        if self._index is None:
            raise RuntimeError(f"{self.name}: load() must be called before querying")
        return BitmapBGPSolver(self._index, self.store)
