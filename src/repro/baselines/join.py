"""Shared join machinery for the baseline engines.

The baselines answer a basic graph pattern with classic relational
strategies rather than graph exploration:

* :func:`scan_join_bgp` — *scan-then-join*: each triple pattern is scanned
  in full from the engine's indexes and the per-pattern results are joined
  in ascending-cardinality order (hash joins).  This is the RDF-3X /
  TripleBit evaluation shape — the work grows with the size of the scanned
  lists, which is exactly why those systems slow down as the dataset grows
  even for queries whose answer stays constant (Section 7.2).
* :func:`nested_loop_bgp` — *index nested loop*: triple patterns are
  instantiated one at a time with the bindings found so far, probing the
  indexes with bound values.  This is the bitmap "System-X" stand-in shape —
  constant-time behaviour on selective queries, but expensive on large
  analytical joins (Q2/Q9).

Both operate on dictionary-encoded ids; variables are plain strings.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.rdf.dictionary import Dictionary
from repro.sparql.ast import TriplePattern, Variable

#: A slot of an encoded pattern: a variable name or a constant id.
Slot = Union[str, int]
#: An encoded triple pattern.  ``None`` marks a pattern with an unknown
#: constant — it can never match and makes the whole BGP empty.
EncodedPattern = Optional[Tuple[Slot, Slot, Slot]]
#: Bindings over dictionary ids.
IdBinding = Dict[str, int]

#: Signature of an index scan: (s, p, o) with None wildcards -> triples.
ScanFunction = Callable[[Optional[int], Optional[int], Optional[int]], Iterable[Tuple[int, int, int]]]
#: Signature of a cardinality estimate for a scan.
EstimateFunction = Callable[[Optional[int], Optional[int], Optional[int]], int]


def encode_pattern(pattern: TriplePattern, dictionary: Dictionary) -> EncodedPattern:
    """Encode a triple pattern against the dictionary (None if unsatisfiable)."""
    slots: List[Slot] = []
    for position, term in enumerate(pattern.terms()):
        if isinstance(term, Variable):
            slots.append(str(term))
        elif position == 1:
            pred_id = dictionary.lookup_predicate(term)
            if pred_id is None:
                return None
            slots.append(pred_id)
        else:
            node_id = dictionary.lookup_node(term)
            if node_id is None:
                return None
            slots.append(node_id)
    return (slots[0], slots[1], slots[2])


def _constants(pattern: Tuple[Slot, Slot, Slot]) -> Tuple[Optional[int], Optional[int], Optional[int]]:
    """The constant part of a pattern (None where a variable sits)."""
    return tuple(slot if isinstance(slot, int) else None for slot in pattern)  # type: ignore[return-value]


def _pattern_binding(pattern: Tuple[Slot, Slot, Slot], triple: Tuple[int, int, int]) -> Optional[IdBinding]:
    """Bindings produced by matching a scanned triple against a pattern.

    Returns None when the pattern repeats a variable with conflicting values
    (e.g. ``?x ?p ?x`` against a non-loop triple).
    """
    binding: IdBinding = {}
    for slot, value in zip(pattern, triple):
        if isinstance(slot, int):
            continue
        if slot in binding and binding[slot] != value:
            return None
        binding[slot] = value
    return binding


# -------------------------------------------------------------- scan-then-join
def scan_join_bgp(
    patterns: Sequence[TriplePattern],
    dictionary: Dictionary,
    scan: ScanFunction,
    estimate: EstimateFunction,
) -> List[IdBinding]:
    """Evaluate a BGP by scanning every pattern and hash-joining the results."""
    encoded: List[Tuple[Slot, Slot, Slot]] = []
    for pattern in patterns:
        item = encode_pattern(pattern, dictionary)
        if item is None:
            return []
        encoded.append(item)

    # Scan each pattern in full (this is the cost that scales with data size).
    scanned: List[Tuple[int, List[IdBinding]]] = []
    for pattern in encoded:
        constants = _constants(pattern)
        rows: List[IdBinding] = []
        for triple in scan(*constants):
            binding = _pattern_binding(pattern, triple)
            if binding is not None:
                rows.append(binding)
        scanned.append((len(rows), rows))

    # Join in ascending cardinality order, preferring patterns that share a
    # variable with the intermediate result (avoids premature cross products).
    remaining = sorted(range(len(scanned)), key=lambda index: scanned[index][0])
    if not remaining:
        return [{}]
    first = remaining.pop(0)
    result = scanned[first][1]
    bound_vars = set(result[0].keys()) if result else _pattern_vars(encoded[first])
    while remaining:
        connected = [
            index for index in remaining if _pattern_vars(encoded[index]) & bound_vars
        ]
        pool = connected if connected else remaining
        chosen = min(pool, key=lambda index: scanned[index][0])
        remaining.remove(chosen)
        result = hash_join(result, scanned[chosen][1])
        bound_vars |= _pattern_vars(encoded[chosen])
        if not result:
            return []
    return result


def _pattern_vars(pattern: Tuple[Slot, Slot, Slot]) -> set:
    """Variable names of an encoded pattern."""
    return {slot for slot in pattern if isinstance(slot, str)}


def hash_join(left: List[IdBinding], right: List[IdBinding]) -> List[IdBinding]:
    """Hash join of two id-binding lists on their shared variables."""
    if not left or not right:
        return []
    shared = sorted(set(left[0].keys() if left else ()) & set(right[0].keys() if right else ()))
    # Variables are uniform across rows of one pattern/intermediate, so
    # looking at the first row suffices.
    if not shared:
        return [dict(l, **r) for l in left for r in right]
    index: Dict[Tuple[int, ...], List[IdBinding]] = {}
    for row in right:
        index.setdefault(tuple(row[var] for var in shared), []).append(row)
    joined: List[IdBinding] = []
    for row in left:
        key = tuple(row[var] for var in shared)
        for other in index.get(key, ()):
            joined.append(dict(row, **other))
    return joined


# ------------------------------------------------------------ index nested loop
def nested_loop_bgp(
    patterns: Sequence[TriplePattern],
    dictionary: Dictionary,
    scan: ScanFunction,
    estimate: EstimateFunction,
) -> List[IdBinding]:
    """Evaluate a BGP with selectivity-ordered index-nested-loop joins."""
    encoded: List[Tuple[Slot, Slot, Slot]] = []
    for pattern in patterns:
        item = encode_pattern(pattern, dictionary)
        if item is None:
            return []
        encoded.append(item)
    if not encoded:
        return [{}]

    results: List[IdBinding] = [{}]
    remaining = list(range(len(encoded)))
    bound_vars: set = set()

    def bound_estimate(index: int) -> int:
        constants = []
        for slot in encoded[index]:
            if isinstance(slot, int):
                constants.append(slot)
            elif slot in bound_vars:
                # A bound variable behaves like a constant but we do not know
                # its value yet; assume high selectivity.
                constants.append(-2)
            else:
                constants.append(None)
        probe = tuple(None if c == -2 else c for c in constants)
        base = estimate(*probe)
        # Each bound variable divides the expected cardinality.
        bound_count = sum(1 for c in constants if c == -2)
        return max(1, base // (10 ** bound_count)) if bound_count else base

    while remaining:
        connected = [i for i in remaining if _pattern_vars(encoded[i]) & bound_vars]
        pool = connected if (connected and bound_vars) else remaining
        chosen = min(pool, key=bound_estimate)
        remaining.remove(chosen)
        pattern = encoded[chosen]
        next_results: List[IdBinding] = []
        for row in results:
            constants = tuple(
                slot if isinstance(slot, int) else row.get(slot)
                for slot in pattern
            )
            for triple in scan(*constants):
                binding = _pattern_binding(pattern, triple)
                if binding is None:
                    continue
                conflict = any(var in row and row[var] != value for var, value in binding.items())
                if conflict:
                    continue
                next_results.append(dict(row, **binding))
        results = next_results
        bound_vars |= _pattern_vars(pattern)
        if not results:
            return []
    return results


def decode_bindings(
    bindings: Iterable[IdBinding], dictionary: Dictionary, predicate_vars: Iterable[str]
) -> Iterator[Dict[str, object]]:
    """Decode id bindings to RDF terms (predicate variables use predicate ids)."""
    predicate_set = set(predicate_vars)
    for binding in bindings:
        yield {
            var: (
                dictionary.decode_predicate(value)
                if var in predicate_set
                else dictionary.decode_node(value)
            )
            for var, value in binding.items()
        }


def predicate_variables_of(patterns: Sequence[TriplePattern]) -> List[str]:
    """Names of variables appearing in predicate position."""
    names = []
    for pattern in patterns:
        if isinstance(pattern.predicate, Variable):
            names.append(str(pattern.predicate))
    return names
