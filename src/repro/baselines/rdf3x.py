"""RDF-3X-style baseline engine.

RDF-3X treats the RDF dataset as one big EDGE(S,P,O) table and materializes
all six attribute orderings so every triple pattern can be answered with a
range scan on a fully sorted index, and joins can run as merge joins over the
scan outputs (Neumann & Weikum, VLDB Journal 2010).

This reproduction keeps that architecture:

* :class:`PermutationIndex` — six sorted tuple arrays (SPO, SOP, PSO, POS,
  OSP, OPS) with binary-search range scans,
* BGP evaluation via *scan-then-join* (:func:`~repro.baselines.join.scan_join_bgp`):
  every pattern is scanned in full and the scan outputs are joined in
  ascending-cardinality order.

The important behavioural property carried over from the real system is that
query cost is driven by the size of the scanned posting lists, which grows
with the dataset even when the final answer stays constant — the effect the
paper demonstrates in Table 3.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import islice
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.join import (
    decode_bindings,
    predicate_variables_of,
    scan_join_bgp,
)
from repro.engine.base import BGPSolver, Engine
from repro.rdf.store import TripleStore
from repro.sparql import expressions as expr
from repro.sparql.ast import TriplePattern
from repro.sparql.results import Binding

#: The six orderings; each string names the sort order of the stored tuples.
_ORDERINGS = ("spo", "sop", "pso", "pos", "osp", "ops")

#: Position of S/P/O in each ordering's tuples.
_SLOTS = {"s": 0, "p": 1, "o": 2}


class PermutationIndex:
    """Six fully sorted permutations of the triple table."""

    def __init__(self, triples: Iterable[Tuple[int, int, int]]):
        base = list(triples)
        self._indexes: Dict[str, List[Tuple[int, int, int]]] = {}
        for ordering in _ORDERINGS:
            permutation = [
                (triple[_SLOTS[ordering[0]]], triple[_SLOTS[ordering[1]]], triple[_SLOTS[ordering[2]]])
                for triple in base
            ]
            permutation.sort()
            self._indexes[ordering] = permutation
        self.size = len(base)

    @staticmethod
    def _choose_ordering(
        subject: Optional[int], predicate: Optional[int], obj: Optional[int]
    ) -> str:
        """Pick the ordering whose prefix covers the bound positions."""
        if subject is not None and predicate is not None and obj is not None:
            return "spo"
        if subject is not None and predicate is not None:
            return "spo"
        if subject is not None and obj is not None:
            return "sop"
        if predicate is not None and obj is not None:
            return "pos"
        if subject is not None:
            return "spo"
        if predicate is not None:
            return "pso"
        if obj is not None:
            return "osp"
        return "spo"

    def _range(
        self, ordering: str, prefix: Tuple[int, ...]
    ) -> List[Tuple[int, int, int]]:
        """All tuples of an ordering starting with the given prefix."""
        index = self._indexes[ordering]
        if not prefix:
            return index
        low = bisect_left(index, prefix)
        high = bisect_right(index, prefix + (float("inf"),) * (3 - len(prefix)))
        return index[low:high]

    def scan(
        self, subject: Optional[int], predicate: Optional[int], obj: Optional[int]
    ) -> Iterable[Tuple[int, int, int]]:
        """Range-scan the best ordering and yield (s, p, o) triples."""
        ordering = self._choose_ordering(subject, predicate, obj)
        bound = {"s": subject, "p": predicate, "o": obj}
        prefix: List[int] = []
        for slot in ordering:
            value = bound[slot]
            if value is None:
                break
            prefix.append(value)
        rows = self._range(ordering, tuple(prefix))
        remaining_slots = ordering[len(prefix):]
        for row in rows:
            triple = {slot: row[position] for position, slot in enumerate(ordering)}
            # Positions bound but not usable as a prefix must be checked.
            skip = False
            for slot in remaining_slots:
                value = bound[slot]
                if value is not None and triple[slot] != value:
                    skip = True
                    break
            if not skip:
                yield (triple["s"], triple["p"], triple["o"])

    def estimate(
        self, subject: Optional[int], predicate: Optional[int], obj: Optional[int]
    ) -> int:
        """Exact range size of the prefix scan (RDF-3X keeps such statistics)."""
        ordering = self._choose_ordering(subject, predicate, obj)
        bound = {"s": subject, "p": predicate, "o": obj}
        prefix: List[int] = []
        for slot in ordering:
            value = bound[slot]
            if value is None:
                break
            prefix.append(value)
        return len(self._range(ordering, tuple(prefix)))


class RDF3XBGPSolver(BGPSolver):
    """Scan-then-join BGP evaluation over the permutation indexes."""

    def __init__(self, index: PermutationIndex, store: TripleStore):
        self.index = index
        self.store = store

    def solve(
        self,
        patterns: Sequence[TriplePattern],
        cheap_filters: Sequence[expr.Expression] = (),
        limit_hint: Optional[int] = None,
    ) -> Iterable[Binding]:
        id_bindings = scan_join_bgp(
            patterns, self.store.dictionary, self.index.scan, self.index.estimate
        )
        decoded = decode_bindings(
            id_bindings, self.store.dictionary, predicate_variables_of(patterns)
        )
        yield from decoded if limit_hint is None else islice(decoded, limit_hint)


class RDF3XEngine(Engine):
    """RDF-3X-style engine: six permutation indexes + scan-then-join."""

    name = "RDF-3X"
    supports_optional = False

    def __init__(self) -> None:
        super().__init__()
        self._index: Optional[PermutationIndex] = None

    def load(self, store: TripleStore) -> None:
        self._store = store
        self._index = PermutationIndex(store.iter_triples())

    def bgp_solver(self) -> RDF3XBGPSolver:
        if self._index is None:
            raise RuntimeError(f"{self.name}: load() must be called before querying")
        return RDF3XBGPSolver(self._index, self.store)
