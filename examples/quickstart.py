#!/usr/bin/env python
"""Quickstart: load RDF triples, run SPARQL with TurboHOM++, compare semantics.

This walks the public API end to end:

1. parse an N-Triples snippet into a :class:`~repro.rdf.store.TripleStore`,
2. load it into the TurboHOM++ engine (type-aware transformation under the hood),
3. run a few SPARQL queries,
4. peek under the hood: run the same pattern as subgraph *isomorphism* vs
   *homomorphism* directly on the labeled graph to see why the distinction
   matters for RDF.

Run with:  python examples/quickstart.py
"""

from repro import (
    MatchConfig,
    TripleStore,
    TurboHomPPEngine,
    parse_ntriples,
    type_aware_transform,
)
from repro.graph.transform import type_aware_transform_query
from repro.matching import TurboMatcher
from repro.sparql.parser import parse_sparql

DATA = """
<http://ex/alice>  <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/bob>    <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/carol>  <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/acme>   <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Company> .
<http://ex/alice>  <http://ex/knows>    <http://ex/bob> .
<http://ex/bob>    <http://ex/knows>    <http://ex/carol> .
<http://ex/carol>  <http://ex/knows>    <http://ex/alice> .
<http://ex/alice>  <http://ex/worksFor> <http://ex/acme> .
<http://ex/bob>    <http://ex/worksFor> <http://ex/acme> .
<http://ex/alice>  <http://ex/age>      "31"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/bob>    <http://ex/age>      "27"^^<http://www.w3.org/2001/XMLSchema#integer> .
"""


def main() -> None:
    # 1. Load the data.
    store = TripleStore()
    store.load(parse_ntriples(DATA))
    print(f"loaded {len(store)} triples")

    # 2. Build the engine (applies the type-aware transformation).
    engine = TurboHomPPEngine()
    engine.load(store)

    # 3. SPARQL queries.
    people = engine.query(
        "PREFIX ex: <http://ex/> SELECT ?p WHERE { ?p a ex:Person . }"
    )
    print("\npersons:", [str(row["p"]) for row in people])

    colleagues = engine.query(
        """
        PREFIX ex: <http://ex/>
        SELECT ?a ?b WHERE {
            ?a ex:worksFor ?c . ?b ex:worksFor ?c . ?a ex:knows ?b .
        }
        """
    )
    print("colleagues who know each other:", [(str(r["a"]), str(r["b"])) for r in colleagues])

    adults = engine.query(
        """
        PREFIX ex: <http://ex/>
        SELECT ?p ?age WHERE { ?p ex:age ?age . FILTER (?age > 30) }
        """
    )
    print("over 30:", [(str(r["p"]), r["age"].lexical) for r in adults])

    # 4. Isomorphism vs homomorphism on the triangle pattern ?x→?y→?z→?x.
    graph, mapping = type_aware_transform(store)
    pattern = parse_sparql(
        "PREFIX ex: <http://ex/> SELECT * WHERE { ?x ex:knows ?y . ?y ex:knows ?z . ?z ex:knows ?x . }"
    ).where.triples
    query_graph = type_aware_transform_query(pattern, mapping).query_graph

    homomorphisms = TurboMatcher(graph, MatchConfig.turbo_hom_pp()).match(query_graph)
    isomorphisms = TurboMatcher(graph, MatchConfig.isomorphism()).match(query_graph)
    print(
        f"\ntriangle pattern: {len(homomorphisms)} homomorphisms (RDF semantics), "
        f"{len(isomorphisms)} subgraph isomorphisms (injective)"
    )


if __name__ == "__main__":
    main()
