#!/usr/bin/env python
"""General SPARQL features on the BSBM e-commerce dataset.

Demonstrates the Section 5.1 features of TurboHOM++ — OPTIONAL, FILTER
(cheap and expensive), UNION, REGEX, language matching — on the synthetic
Berlin SPARQL Benchmark data, and shows how inexpensive filters are pushed
into graph exploration while expensive ones run after pattern matching.

Run with:  python examples/sparql_features.py
"""

from repro import TurboHomPPEngine
from repro.datasets import load_bsbm

QUERIES = {
    "products with a feature, price-like property above a threshold (cheap FILTER)": """
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
        PREFIX bsbm: <http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/vocabulary/>
        PREFIX inst: <http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/instances/>
        SELECT ?product ?value WHERE {
            ?product bsbm:productFeature inst:ProductFeature1 .
            ?product bsbm:productPropertyNumeric1 ?value .
            FILTER (?value > 1500)
        }""",
    "offers with vendor, keeping products that have no offer (OPTIONAL)": """
        PREFIX bsbm: <http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/vocabulary/>
        PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
        PREFIX inst: <http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/instances/>
        SELECT ?label ?price WHERE {
            inst:Product2 rdfs:label ?label .
            OPTIONAL { ?offer bsbm:product inst:Product2 . ?offer bsbm:price ?price . }
        }""",
    "products carrying either of two features (UNION)": """
        PREFIX bsbm: <http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/vocabulary/>
        PREFIX inst: <http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/instances/>
        SELECT DISTINCT ?product WHERE {
            { ?product bsbm:productFeature inst:ProductFeature1 . }
            UNION
            { ?product bsbm:productFeature inst:ProductFeature2 . }
        }""",
    "label keyword search (expensive REGEX filter)": """
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
        PREFIX bsbm: <http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/vocabulary/>
        SELECT ?product ?label WHERE {
            ?product rdf:type bsbm:Product .
            ?product rdfs:label ?label .
            FILTER (REGEX(?label, "alpha.*bravo|bravo.*alpha"))
        }""",
    "English reviews of a product (language tags)": """
        PREFIX bsbm: <http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/vocabulary/>
        PREFIX inst: <http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/instances/>
        SELECT ?review ?text WHERE {
            ?review bsbm:reviewFor inst:Product3 .
            ?review bsbm:text ?text .
            FILTER (LANGMATCHES(LANG(?text), "en"))
        }""",
}


def main() -> None:
    dataset = load_bsbm(products=200)
    print(f"BSBM dataset: {dataset.total_triples} triples")
    engine = TurboHomPPEngine()
    engine.load(dataset.store)
    for description, sparql in QUERIES.items():
        result = engine.query(sparql)
        print(f"\n--- {description}")
        print(f"    {len(result)} solutions; first 3:")
        for row in result.rows[:3]:
            printable = {var: getattr(value, "lexical", str(value)) for var, value in row.items()}
            print(f"    {printable}")


if __name__ == "__main__":
    main()
