#!/usr/bin/env python
"""Using the matcher directly on a labeled graph (no SPARQL involved).

The TurboHOM++ core is a general labeled-graph pattern matcher; this example
builds a small social-network graph by hand with :class:`GraphBuilder`,
defines query graphs programmatically, and compares

* subgraph isomorphism vs graph homomorphism semantics,
* the TurboISO-style candidate-region matcher vs the naive generic matcher,
* sequential vs parallel (work-partitioned) matching.

Run with:  python examples/social_network_matching.py
"""

import random

from repro import GraphBuilder, MatchConfig, QueryGraph
from repro.matching import GenericMatcher, ParallelMatcher, TurboMatcher

# Vertex labels.
PERSON, COMPANY, CITY = 0, 1, 2
# Edge labels.
FOLLOWS, WORKS_AT, LIVES_IN = 0, 1, 2


def build_social_graph(people: int = 300, seed: int = 3):
    """Random social network: people follow each other, work somewhere, live somewhere."""
    rng = random.Random(seed)
    builder = GraphBuilder()
    companies = list(range(people, people + 10))
    cities = list(range(people + 10, people + 20))
    for person in range(people):
        builder.add_vertex(person, (PERSON,))
    for company in companies:
        builder.add_vertex(company, (COMPANY,))
    for city in cities:
        builder.add_vertex(city, (CITY,))
    for person in range(people):
        for _ in range(rng.randint(1, 5)):
            builder.add_edge(person, FOLLOWS, rng.randrange(people))
        builder.add_edge(person, WORKS_AT, rng.choice(companies))
        builder.add_edge(person, LIVES_IN, rng.choice(cities))
    return builder.build()


def coworker_triangle() -> QueryGraph:
    """?a follows ?b, both work at ?c — a 'colleague recommendation' pattern."""
    query = QueryGraph()
    a = query.add_vertex("a", frozenset((PERSON,)))
    b = query.add_vertex("b", frozenset((PERSON,)))
    c = query.add_vertex("c", frozenset((COMPANY,)))
    query.add_edge(a, b, FOLLOWS)
    query.add_edge(a, c, WORKS_AT)
    query.add_edge(b, c, WORKS_AT)
    return query


def mutual_follow() -> QueryGraph:
    """?a follows ?b and ?b follows ?a."""
    query = QueryGraph()
    a = query.add_vertex("a", frozenset((PERSON,)))
    b = query.add_vertex("b", frozenset((PERSON,)))
    query.add_edge(a, b, FOLLOWS)
    query.add_edge(b, a, FOLLOWS)
    return query


def main() -> None:
    graph = build_social_graph()
    print(f"social graph: {graph.vertex_count} vertices, {graph.edge_count} edges")

    for name, query in (("coworker triangle", coworker_triangle()), ("mutual follow", mutual_follow())):
        hom = TurboMatcher(graph, MatchConfig.turbo_hom_pp()).match(query)
        iso = TurboMatcher(graph, MatchConfig.isomorphism()).match(query)
        oracle = GenericMatcher(graph, MatchConfig.turbo_hom_pp()).match(query)
        print(f"\n{name}: {len(hom)} homomorphisms, {len(iso)} isomorphisms "
              f"(naive matcher agrees: {len(oracle) == len(hom)})")

        parallel = ParallelMatcher(graph, MatchConfig.turbo_hom_pp(), workers=4, chunk_size=8)
        solutions, stats = parallel.match(query)
        print(f"  parallel: {len(solutions)} solutions across {stats.workers} workers, "
              f"simulated dynamic-chunk speedup {stats.simulated_speedup():.2f}x")


if __name__ == "__main__":
    main()
