#!/usr/bin/env python
"""LUBM walkthrough: generate the benchmark, compare engines, inspect scaling.

Reproduces (at laptop scale) the core of the paper's Section 7.2: the 14 LUBM
queries are answered by TurboHOM++ and the three baseline engines, and the
dataset is generated at two scale factors so the constant- vs
increasing-solution query behaviour is visible.

Run with:  python examples/lubm_benchmark.py  [universities ...]
"""

import sys

from repro.bench.harness import compare_engines, make_engines, timing_table
from repro.datasets import load_lubm
from repro.datasets.lubm.queries import CONSTANT_SOLUTION_QUERIES, INCREASING_SOLUTION_QUERIES


def main(scales) -> None:
    previous_counts = {}
    for scale in scales:
        dataset = load_lubm(universities=scale)
        print(f"\n=== {dataset.name}: {dataset.original_triples} original triples, "
              f"{dataset.total_triples} after inference ===")

        engines = make_engines()
        timings = compare_engines(dataset, engines, repeats=3)
        print(timing_table(f"elapsed time in {dataset.name} [ms]", timings, engines).to_text())

        # Show which queries have scale-independent answers.
        counts = {qid: t[0].solutions for qid, t in timings.items()}
        if previous_counts:
            constant = [q for q in CONSTANT_SOLUTION_QUERIES if counts[q] == previous_counts[q]]
            growing = [q for q in INCREASING_SOLUTION_QUERIES if counts[q] > previous_counts[q]]
            print(f"\nconstant-solution queries (same answer as previous scale): {constant}")
            print(f"increasing-solution queries (answer grew): {growing}")
        previous_counts = counts


if __name__ == "__main__":
    requested = [int(arg) for arg in sys.argv[1:]] or [1, 2]
    main(requested)
