"""SPARQL serving under concurrency — latency, throughput, admission.

The serving front-end exists so that many clients can share one loaded
engine; this benchmark pins the properties that make that safe and fast,
on LUBM(1), in both execution modes:

* **closed-loop correctness + latency** — a handful of keep-alive clients
  issue a skewed query mix back-to-back; every response must parse and
  carry *exactly* the multiset the engine produces sequentially (zero
  dropped or invalid responses), and the run reports p50/p99 latency and
  aggregate QPS;
* **streaming vs materialized serialization** — encoding straight off the
  batch stream must not lose to materializing the full ResultSet first
  (it skips the row-dict detour entirely);
* **open-loop burst admission** — a burst wider than
  ``max_inflight + queue_depth`` degrades into fast 503s while every
  admitted query still completes correctly;
* **workload-aware admission** — on a Zipf-skewed multi-plan mix whose
  region working set overflows the cache budget, TinyLFU admission must
  beat plain LRU by >= 1.3x on warm region hit ratio *and* improve warm
  QPS (the reason ``REPRO_CACHE_ADMISSION`` defaults to ``tinylfu``).

Run with ``pytest benchmarks/bench_serving.py -q -s`` for the tables; all
gates are asserted, so this file doubles as the serving regression gate
in CI.
"""

from __future__ import annotations

import http.client
import json
import random
import statistics
import threading
import time
import urllib.parse

import pytest

from repro.datasets import load_lubm
from repro.engine.turbo_engine import TurboHomPPEngine
from repro.serving import ServerThread
from repro.rdf.terms import Literal
from repro.sparql.binding_batch import BatchResult
from repro.sparql.serializers import serialize_json

#: Closed-loop shape: CLIENTS keep-alive connections, ROUNDS requests each.
CLIENTS = 4
ROUNDS = 12

#: Skewed mix: the hot query dominates, two heavier ones trail (the usual
#: serving profile — many cheap point lookups, occasional analytics).
MIX = ["Q1"] * 8 + ["Q4"] * 3 + ["Q7"] * 1

REPEATS = 11


@pytest.fixture(scope="module")
def lubm():
    return load_lubm(universities=1)


def _term_value(term):
    """A term as its JSON-results ``value`` field (None = unbound)."""
    if term is None:
        return "None"
    if isinstance(term, Literal):
        return term.lexical
    return str(term)


def _expected_multisets(engine, dataset):
    expected = {}
    for query_id in set(MIX):
        result = engine.query(dataset.queries[query_id])
        expected[query_id] = sorted(
            tuple(_term_value(row[var]) for var in result.variables)
            for row in result
        )
    return expected


def _response_multiset(body):
    data = json.loads(body)
    variables = data["head"]["vars"]
    return sorted(
        tuple(row.get(var, {}).get("value", "None") for var in variables)
        for row in data["results"]["bindings"]
    )


def _percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[int(fraction * (len(ordered) - 1))]


@pytest.mark.parametrize("execution_mode", ["threads", "processes"])
def test_closed_loop_latency_and_parity(lubm, execution_mode):
    """Concurrent clients: zero bad responses, sequential-oracle parity."""
    engine = TurboHomPPEngine(workers=2, execution_mode=execution_mode)
    engine.load(lubm.store)
    try:
        expected = _expected_multisets(engine, lubm)
        latencies = []
        failures = []
        with ServerThread(engine, max_inflight=CLIENTS) as server:
            def client(index):
                conn = http.client.HTTPConnection(
                    "127.0.0.1", server.port, timeout=120
                )
                try:
                    for round_index in range(ROUNDS):
                        query_id = MIX[(index + round_index * CLIENTS) % len(MIX)]
                        target = "/sparql?query=" + urllib.parse.quote(
                            lubm.queries[query_id]
                        )
                        begin = time.perf_counter()
                        conn.request("GET", target)
                        response = conn.getresponse()
                        body = response.read()
                        latencies.append(
                            (time.perf_counter() - begin) * 1000.0
                        )
                        if response.status != 200:
                            failures.append((index, query_id, response.status))
                        elif _response_multiset(body) != expected[query_id]:
                            failures.append((index, query_id, "wrong rows"))
                finally:
                    conn.close()

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
            ]
            wall_begin = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            wall = time.perf_counter() - wall_begin

        total = CLIENTS * ROUNDS
        assert len(latencies) == total, "dropped responses"
        assert not failures, f"invalid responses: {failures[:5]}"
        p50 = _percentile(latencies, 0.50)
        p99 = _percentile(latencies, 0.99)
        print(
            f"\nserving closed-loop [{execution_mode}]: {CLIENTS} clients x "
            f"{ROUNDS} requests, p50 {p50:.2f} ms, p99 {p99:.2f} ms, "
            f"{total / wall:.1f} QPS, 0 dropped/invalid"
        )
    finally:
        engine.close()


def test_streaming_beats_materialized_serialization(lubm):
    """Serializing off the batch stream must not lose to materializing."""
    engine = TurboHomPPEngine()
    engine.load(lubm.store)
    try:
        # The high-fanout pattern: thousands of rows through the encoder.
        query = (
            "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> "
            "SELECT ?x ?y WHERE { ?x ub:takesCourse ?y . }"
        )

        def streaming():
            with engine.query_batches(query) as result:
                return b"".join(serialize_json(result.variables, result))

        def materialized():
            result = engine.query(query)  # full row-dict ResultSet first
            from repro.sparql.binding_batch import batches_from_bindings

            return b"".join(
                serialize_json(
                    result.variables,
                    batches_from_bindings(result.variables, iter(result.rows)),
                )
            )

        assert json.loads(streaming()) == json.loads(materialized())

        def median_ms(run):
            times = []
            for _ in range(REPEATS):
                begin = time.perf_counter()
                run()
                times.append((time.perf_counter() - begin) * 1000.0)
            return statistics.median(times)

        materialized_median = median_ms(materialized)
        streaming_median = median_ms(streaming)
        print(
            f"\nserialization: streaming {streaming_median:.2f} ms, "
            f"materialized {materialized_median:.2f} ms "
            f"(x{materialized_median / max(streaming_median, 1e-9):.2f})"
        )
        # Noise guard: streaming must at least hold the line (it does
        # strictly less work — no intermediate Binding dicts).
        assert streaming_median <= materialized_median * 1.15, (
            f"streaming serialization ({streaming_median:.2f} ms) regressed "
            f"against materialized ({materialized_median:.2f} ms)"
        )
    finally:
        engine.close()


class _GatedEngine:
    """Holds every query before its first batch until ``release`` is set."""

    def __init__(self, inner):
        self.inner = inner
        self.release = threading.Event()
        self.started = threading.Event()

    def _parse_checked(self, query):
        return self.inner._parse_checked(query)

    def query_batches(self, query):
        result = self.inner.query_batches(query)

        def gated():
            with result:
                self.started.set()
                self.release.wait(timeout=60)
                yield from result

        return BatchResult(result.variables, gated())


def test_open_loop_burst_sheds_load(lubm):
    """A burst beyond max_inflight + queue_depth: fast 503s, no hangs."""
    engine = TurboHomPPEngine()
    engine.load(lubm.store)
    gated = _GatedEngine(engine)
    query = urllib.parse.quote(lubm.queries["Q1"])
    burst = 4
    try:
        with ServerThread(
            gated, max_inflight=1, queue_depth=2, timeout_ms=60_000
        ) as server:
            statuses = []
            lock = threading.Lock()

            def holder():
                status, _ = _get(server.port, query)
                with lock:
                    statuses.append(status)

            def burst_client():
                status, _ = _get(server.port, query)
                with lock:
                    statuses.append(status)

            hold = threading.Thread(target=holder)
            hold.start()
            assert gated.started.wait(timeout=30)
            clients = [
                threading.Thread(target=burst_client) for _ in range(burst)
            ]
            begin = time.perf_counter()
            for thread in clients:
                thread.start()
            # Rejections must come back while the slot is still held.
            deadline = time.time() + 30
            while time.time() < deadline:
                with lock:
                    if statuses.count(503) >= burst - 2:
                        break
                time.sleep(0.01)
            shed_ms = (time.perf_counter() - begin) * 1000.0
            gated.release.set()
            hold.join(timeout=60)
            for thread in clients:
                thread.join(timeout=60)

        assert sorted(statuses) == [200, 200, 200, 503, 503], statuses
        print(
            f"\nserving open-loop burst: {burst + 1} arrivals into "
            f"1 slot + 2 queued -> 2 fast 503s in {shed_ms:.1f} ms, "
            f"3 correct 200s after release"
        )
    finally:
        engine.close()


def _get(port, quoted_query):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request("GET", "/sparql?query=" + quoted_query)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


# ------------------------------------------------------- admission gate
#: Distinct plans in the skewed mix.  The variants differ only in variable
#: names — identical exploration cost and results, distinct plan-cache
#: fingerprints — so every plan contributes the same region working set.
ADMISSION_PLANS = 10

#: Zipf exponent and request count of the skewed serving mix.
ADMISSION_ZIPF_EXPONENT = 1.2
ADMISSION_REQUESTS = 300

#: Requests spent seeding caches/frequencies before the warm measurement.
ADMISSION_SEED = 60

#: Cache budget in units of one plan's region bytes: the 10-plan working
#: set overflows a 2-plan budget five times over.
ADMISSION_BUDGET_PLANS = 2.0


@pytest.fixture(scope="module")
def lubm_admission():
    # Larger than the latency fixture: the gate needs region exploration
    # (not per-request fixed costs) to dominate each query's runtime.
    return load_lubm(universities=6)


def _admission_variant(rank):
    # Same star shape for every rank — the variable names are part of the
    # plan fingerprint, so each rank compiles (and caches regions) as its
    # own plan while costing exactly the same to explore.
    return (
        "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> "
        f"SELECT ?x{rank} ?y{rank} ?z{rank} WHERE {{ "
        f"?x{rank} ub:takesCourse ?y{rank} . ?x{rank} ub:memberOf ?z{rank} }}"
    )


def _drain_batches(engine, sparql):
    """Run one query on the batch stream, returning its row count."""
    rows = 0
    with engine.query_batches(sparql) as result:
        for batch in result:
            rows += batch.rows
    return rows


def _run_admission_mix(lubm, mode, budget_bytes, sequence):
    """One engine's pass over the skewed mix; returns (hit_ratio, qps, rows)."""
    engine = TurboHomPPEngine(
        workers=1,
        execution_mode="threads",  # pin: the gate reads the engine-held cache
        cache_admission=mode,
        region_cache_bytes=budget_bytes,
    )
    engine.load(lubm.store)
    try:
        rows = 0
        for rank in sequence[:ADMISSION_SEED]:
            rows += _drain_batches(engine, _admission_variant(rank))
        seeded = engine.stats()["region_cache"]
        begin = time.perf_counter()
        for rank in sequence[ADMISSION_SEED:]:
            rows += _drain_batches(engine, _admission_variant(rank))
        elapsed = time.perf_counter() - begin
        warm = engine.stats()["region_cache"]
        hits = warm["hits"] - seeded["hits"]
        misses = warm["misses"] - seeded["misses"]
        hit_ratio = hits / max(1, hits + misses)
        qps = (len(sequence) - ADMISSION_SEED) / elapsed
        return hit_ratio, qps, rows, warm
    finally:
        engine.close()


def test_tinylfu_admission_beats_lru_on_skewed_mix(lubm_admission):
    """The tentpole gate: frequency-aware admission on an overflowing mix.

    Ten equal-cost plans under Zipf(1.2) traffic share a region budget
    that holds only two plans' regions.  Plain LRU admits every insert, so
    the cold tail continuously flushes the hot plans' regions; TinyLFU
    keeps the proven-hot regions resident.  Gates: >= 1.3x warm hit ratio
    and > 1.05x warm QPS, measured after a shared seeding phase.
    """
    # Size the budget from a measured plan: one variant's full region set.
    probe = TurboHomPPEngine(
        workers=1, execution_mode="threads", region_cache_bytes=1 << 30
    )
    probe.load(lubm_admission.store)
    try:
        _drain_batches(probe, _admission_variant(0))
        plan_bytes = probe.stats()["region_cache"]["bytes"]
    finally:
        probe.close()
    assert plan_bytes > 0
    budget_bytes = int(ADMISSION_BUDGET_PLANS * plan_bytes)
    working_set = ADMISSION_PLANS * plan_bytes
    assert working_set > 2 * budget_bytes, "mix must overflow the budget"

    weights = [
        1.0 / (rank + 1) ** ADMISSION_ZIPF_EXPONENT
        for rank in range(ADMISSION_PLANS)
    ]
    sequence = random.Random(7).choices(
        range(ADMISSION_PLANS), weights=weights, k=ADMISSION_REQUESTS
    )

    lru_hit, lru_qps, lru_rows, lru_stats = _run_admission_mix(
        lubm_admission, "lru", budget_bytes, sequence
    )
    lfu_hit, lfu_qps, lfu_rows, lfu_stats = _run_admission_mix(
        lubm_admission, "tinylfu", budget_bytes, sequence
    )

    assert lfu_rows == lru_rows, "admission must not change results"
    print(
        f"\nadmission gate: {ADMISSION_PLANS} plans, zipf "
        f"{ADMISSION_ZIPF_EXPONENT}, budget {budget_bytes / 1024:.0f} KiB "
        f"(working set {working_set / 1024:.0f} KiB)\n"
        f"  lru     hit {lru_hit:5.1%}  {lru_qps:7.1f} QPS  "
        f"evictions {lru_stats['evictions']}\n"
        f"  tinylfu hit {lfu_hit:5.1%}  {lfu_qps:7.1f} QPS  "
        f"rejects {lfu_stats['admission_rejects']} "
        f"accepts {lfu_stats['admission_accepts']} "
        f"resets {lfu_stats['sketch_resets']}\n"
        f"  -> hit x{lfu_hit / max(lru_hit, 1e-9):.2f}, "
        f"QPS x{lfu_qps / lru_qps:.2f}"
    )
    assert lfu_stats["admission_rejects"] > 0, "gate never pressured admission"
    assert lfu_hit >= 1.3 * lru_hit, (
        f"TinyLFU warm hit ratio {lfu_hit:.1%} must be >= 1.3x "
        f"LRU's {lru_hit:.1%}"
    )
    assert lfu_qps > 1.05 * lru_qps, (
        f"TinyLFU warm QPS {lfu_qps:.1f} must improve on LRU's {lru_qps:.1f}"
    )
