"""Table 2 — number of solutions of the LUBM queries per scale factor.

The shape claim reproduced here: the constant-solution queries (Q1, Q3–Q5,
Q7, Q8, Q10–Q12) return the same number of answers at every scale, while the
increasing-solution queries (Q2, Q6, Q9, Q13, Q14) grow with the dataset.
"""

from __future__ import annotations

from conftest import LUBM_SCALES, report

from repro.bench import experiments
from repro.datasets.lubm.queries import (
    CONSTANT_SOLUTION_QUERIES,
    INCREASING_SOLUTION_QUERIES,
)


def test_table2_report(benchmark):
    """Regenerate Table 2 and verify the constant vs increasing split."""
    table = benchmark.pedantic(
        lambda: experiments.table2_lubm_solutions(lubm_scales=LUBM_SCALES),
        rounds=1,
        iterations=1,
    )
    report(table)
    first_row, last_row = table.rows[0], table.rows[-1]
    header = table.columns
    for query_id in CONSTANT_SOLUTION_QUERIES:
        index = header.index(query_id)
        assert first_row[index] == last_row[index], f"{query_id} should be scale-independent"
    for query_id in INCREASING_SOLUTION_QUERIES:
        index = header.index(query_id)
        assert last_row[index] > first_row[index], f"{query_id} should grow with the scale factor"


def test_table2_counting_cost(benchmark, lubm_large, lubm_large_engines):
    """Time counting the largest query (Q6: all students) on TurboHOM++."""
    engine = lubm_large_engines["TurboHOM++"]
    result = benchmark(engine.query, lubm_large.queries["Q6"])
    assert len(result) > 0
