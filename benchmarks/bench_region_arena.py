"""Region arena + region cache (ours) — the PR-5 matching-core speedups.

Two gates guard the two halves of the arena work:

* **cold path** — the arena-backed iterative core (flat candidate pool,
  explicit-stack enumeration writing straight into batch columns) must beat
  the PR-4 dict-backed region core by ≥ 1.5× median on the star-closure
  probe, the workload whose chord query concentrates time in candidate
  regions + IsJoinable exactly like the paper's Figure 6/11 hot path.  The
  baseline below is a faithful, self-contained copy of the PR-4 core: a
  dict-of-lists ``CandidateRegion`` with a tuple-key memo, the recursive
  dict-filling exploration, and the recursive generator search yielding one
  ``List[int]`` per solution into batch collectors (statistics counters
  included, exactly as the shipped code had).
* **warm path** — with the cross-query region cache enabled, repeated
  executions of the same (plan, start vertex) keys must beat the uncached
  run by ≥ 2× median on a repeated-query serving workload whose exploration
  (filters on, TurboHOM-baseline config) dominates enumeration — the
  scenario ``bench_repeated_queries.py`` models at the engine level.

Both measurements interleave baseline and candidate rounds and compare
medians, which keeps the gates robust to scheduler noise.  Run with
``pytest benchmarks/bench_region_arena.py -q -s`` to see the table; the
assertions make this file a CI regression gate.
"""

from __future__ import annotations

import gc
import statistics
import time
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from conftest import chord_query, star_closure_graph

from repro.engine.region_cache import RegionCache
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryEdge, QueryGraph
from repro.matching.config import MatchConfig
from repro.matching.matching_order import OrderCache
from repro.matching.query_tree import QueryTree
from repro.matching.solution_batch import SOLUTION_BATCH_SIZE, SolutionBatch
from repro.matching.subgraph_search import SearchStatistics
from repro.matching.turbo import TurboMatcher, prepare_query
from repro.utils.intersect import as_window, intersect_windows

#: Interleaved (baseline, candidate) rounds per comparison.
ROUNDS = 15


# --------------------------------------------------------------------------
# The PR-4 dict-backed region core, verbatim-in-spirit: kept here (not in
# src/) purely as the benchmark baseline the arena is gated against.
# --------------------------------------------------------------------------
class DictCandidateRegion:
    """Candidate vertices grouped by (query vertex, parent data vertex)."""

    def __init__(self, start_query_vertex: int, start_data_vertex: int):
        self.start_query_vertex = start_query_vertex
        self.start_data_vertex = start_data_vertex
        self._candidates: Dict[Tuple[int, int], List[int]] = {}
        self._counts: Dict[int, int] = {}

    def set(self, query_vertex: int, parent: int, candidates: List[int]) -> None:
        key = (query_vertex, parent)
        if key in self._candidates:
            return
        self._candidates[key] = candidates
        self._counts[query_vertex] = self._counts.get(query_vertex, 0) + len(candidates)

    def get(self, query_vertex: int, parent: int) -> List[int]:
        return self._candidates.get((query_vertex, parent), [])

    def count(self, query_vertex: int) -> int:
        return self._counts.get(query_vertex, 0)

    def size(self) -> int:
        return sum(self._counts.values())


def dict_explore_candidate_region(
    graph: LabeledGraph,
    query: QueryGraph,
    tree: QueryTree,
    config: MatchConfig,
    start_data_vertex: int,
) -> Optional[DictCandidateRegion]:
    """The recursive dict-filling exploration of the PR-4 core."""
    region = DictCandidateRegion(tree.root, start_data_vertex)
    memo: Dict[Tuple[int, int], Optional[List[int]]] = {}

    def explore(query_vertex: int, data_vertex: int) -> bool:
        for child in tree.children.get(query_vertex, []):
            key = (child, data_vertex)
            if key in memo:
                cached = memo[key]
                if cached is None:
                    return False
                region.set(child, data_vertex, cached)
                continue
            tree_edge = tree.tree_edges[child]
            child_vertex = query.vertices[child]
            base, lo, hi = graph.neighbors_by_type_window(
                data_vertex,
                tree_edge.edge.label,
                child_vertex.labels,
                outgoing=tree_edge.outgoing_from_parent,
            )
            pinned = child_vertex.vertex_id
            valid: List[int] = []
            for index in range(lo, hi):
                candidate = base[index]
                if pinned is not None and candidate != pinned:
                    continue
                if explore(child, candidate):
                    valid.append(candidate)
            memo[key] = valid if valid else None
            if not valid:
                return False
            region.set(child, data_vertex, valid)
        return True

    if not explore(tree.root, start_data_vertex):
        return None
    return region


def dict_subgraph_search_iter(
    graph: LabeledGraph,
    query: QueryGraph,
    tree: QueryTree,
    region: DictCandidateRegion,
    order: List[int],
    config: MatchConfig,
    stats: SearchStatistics,
):
    """The recursive generator search of the PR-4 core (one list/solution)."""
    vertex_count = query.vertex_count()
    mapping: List[int] = [-1] * vertex_count
    mapping[tree.root] = region.start_data_vertex
    used: Dict[int, int] = {}
    homomorphism = config.homomorphism
    if not homomorphism:
        used[region.start_data_vertex] = 1

    position = {vertex: index for index, vertex in enumerate(order)}
    non_tree: Dict[int, List[QueryEdge]] = {vertex: [] for vertex in order}
    for edge in tree.non_tree_edges:
        later = edge.source if position[edge.source] >= position[edge.target] else edge.target
        non_tree[later].append(edge)
    total_depth = len(order)

    for edge in non_tree.get(order[0], []):
        stats.joinable_probes += 1
        if not graph.has_edge(region.start_data_vertex, region.start_data_vertex, edge.label):
            return

    use_intersection = config.use_intersection
    split_edges: Dict[int, Tuple[List[QueryEdge], List[QueryEdge]]] = {}
    for vertex, edges in non_tree.items():
        loops = [e for e in edges if e.source == e.target]
        cross = [e for e in edges if e.source != e.target]
        split_edges[vertex] = (loops, cross)
    has_edge = graph.has_edge

    def window_for(edge: QueryEdge, current: int):
        if edge.source == current:
            return graph.in_window(mapping[edge.target], edge.label)
        return graph.out_window(mapping[edge.source], edge.label)

    def recurse(depth: int):
        stats.recursions += 1
        if depth == total_depth:
            stats.solutions += 1
            yield list(mapping)
            return
        current = order[depth]
        parent = tree.parent[current]
        candidates = region.get(current, mapping[parent])
        loop_edges, cross_edges = split_edges[current]
        probe_windows = []
        probe_edges = []
        if cross_edges:
            if use_intersection:
                stats.intersection_calls += 1
                windows = [as_window(candidates)]
                for edge in cross_edges:
                    windows.append(window_for(edge, current))
                candidates = intersect_windows(windows)
            else:
                for edge in cross_edges:
                    if edge.label is None:
                        probe_edges.append(edge)
                    else:
                        probe_windows.append(window_for(edge, current))
        for candidate in candidates:
            if not homomorphism and used.get(candidate):
                continue
            joinable = True
            for base, lo, hi in probe_windows:
                stats.joinable_probes += 1
                i = bisect_left(base, candidate, lo, hi)
                if i >= hi or base[i] != candidate:
                    joinable = False
                    break
            if joinable:
                for edge in probe_edges:
                    stats.joinable_probes += 1
                    if edge.source == current:
                        exists = has_edge(candidate, mapping[edge.target], edge.label)
                    else:
                        exists = has_edge(mapping[edge.source], candidate, edge.label)
                    if not exists:
                        joinable = False
                        break
            if joinable:
                for edge in loop_edges:
                    stats.joinable_probes += 1
                    if not has_edge(candidate, candidate, edge.label):
                        joinable = False
                        break
            if not joinable:
                continue
            mapping[current] = candidate
            if not homomorphism:
                used[candidate] = used.get(candidate, 0) + 1
            yield from recurse(depth + 1)
            mapping[current] = -1
            if not homomorphism:
                used[candidate] -= 1

    yield from recurse(1)


def dict_order(tree: QueryTree, region: DictCandidateRegion, cache: Optional[OrderCache]):
    if cache is not None and cache.order is not None:
        return cache.order
    scored = []
    for index, path in enumerate(tree.paths()):
        scored.append((sum(region.count(v) for v in path[1:]), index, path))
    scored.sort(key=lambda item: (item[0], item[1]))
    order = [tree.root]
    seen = {tree.root}
    for _, _, path in scored:
        for vertex in path[1:]:
            if vertex not in seen:
                seen.add(vertex)
                order.append(vertex)
    if cache is not None:
        cache.order = order
    return order


def dict_match_batches(graph, query, config, prepared) -> int:
    """Algorithm 1's start-vertex loop on the PR-4 core, batch collectors
    included (the exact shape run_chunk had before the arena)."""
    width = query.vertex_count()
    tree = prepared.tree
    order_cache = OrderCache() if config.reuse_matching_order else None
    total = 0
    for start in prepared.start_candidates:
        region = dict_explore_candidate_region(graph, query, tree, config, start)
        if region is None:
            continue
        order = dict_order(tree, region, order_cache)
        stats = SearchStatistics()
        columns = SolutionBatch.collector(width)
        rows = 0
        for solution in dict_subgraph_search_iter(
            graph, query, tree, region, order, config, stats
        ):
            for index in range(width):
                columns[index].append(solution[index])
            rows += 1
            if rows >= SOLUTION_BATCH_SIZE:
                total += rows
                columns = SolutionBatch.collector(width)
                rows = 0
        total += rows
    return total


# ------------------------------------------------------------- measurement
def interleaved_medians(baseline, candidate, rounds: int = ROUNDS):
    """Median ms of each side, measured in alternating rounds."""
    baseline()
    candidate()  # warm-up both (plan state, pools, branch caches)
    baseline_times: List[float] = []
    candidate_times: List[float] = []
    gc.disable()
    try:
        for _ in range(rounds):
            begin = time.perf_counter()
            baseline()
            baseline_times.append(time.perf_counter() - begin)
            begin = time.perf_counter()
            candidate()
            candidate_times.append(time.perf_counter() - begin)
    finally:
        gc.enable()
    return (
        statistics.median(baseline_times) * 1000.0,
        statistics.median(candidate_times) * 1000.0,
    )


# ------------------------------------------------------------------- gates
def test_region_arena_beats_dict_core():
    """Arena core ≥ 1.5× over the PR-4 dict-region core (star-closure probe)."""
    config = MatchConfig.turbo_hom_pp()
    query = chord_query()
    results = []
    for hubs, spokes in ((1, 2000), (48, 60)):
        graph = star_closure_graph(spokes=spokes, hubs=hubs)
        prepared = prepare_query(graph, query, config)
        matcher = TurboMatcher(graph, config)
        expected = hubs * (spokes - 1)

        def run_dict():
            assert dict_match_batches(graph, query, config, prepared) == expected

        def run_arena():
            rows = 0
            for batch in matcher.iter_match_batches(query, prepared=prepared):
                rows += batch.rows
            assert rows == expected

        dict_ms, arena_ms = interleaved_medians(run_dict, run_arena)
        results.append((hubs, spokes, dict_ms, arena_ms, dict_ms / arena_ms))

    print("\nregion-arena cold path (star-closure probe):")
    for hubs, spokes, dict_ms, arena_ms, speedup in results:
        print(
            f"  hubs={hubs:3d} spokes={spokes:5d}: dict-region {dict_ms:7.2f} ms | "
            f"arena {arena_ms:7.2f} ms | x{speedup:.2f}"
        )
    best = max(speedup for *_, speedup in results)
    assert best >= 1.5, (
        f"arena core should be >= 1.5x over the dict-region core on the "
        f"star-closure probe (best observed x{best:.2f})"
    )
    assert all(speedup > 1.0 for *_, speedup in results), (
        "arena must not regress on any probe shape"
    )


def test_region_cache_warm_repeated_queries():
    """Warm region cache ≥ 2× on the repeated-query serving workload.

    Exploration-heavy configuration (degree + NLF filters enabled — the
    TurboHOM baseline of Section 2.2): every repeated execution used to
    redo the filter evaluation for every candidate of every region; the
    cache serves the frozen snapshots instead.
    """
    config = MatchConfig.turbo_hom_pp().without("DEG").without("NLF")
    graph = star_closure_graph(spokes=60, hubs=32)
    query = chord_query()
    prepared = prepare_query(graph, query, config)
    matcher = TurboMatcher(graph, config)
    expected = 32 * 59
    cache = RegionCache(64 << 20)
    key = ("bench-region-cache", 0, 0)

    def run_uncached():
        rows = 0
        for batch in matcher.iter_match_batches(query, prepared=prepared):
            rows += batch.rows
        assert rows == expected

    def run_cached():
        rows = 0
        for batch in matcher.iter_match_batches(
            query, prepared=prepared, region_cache=cache, region_key=key
        ):
            rows += batch.rows
        assert rows == expected

    run_cached()  # prime: every region explored once and snapshotted
    cold_ms, warm_ms = interleaved_medians(run_uncached, run_cached)
    hit_rate = cache.hits / max(1, cache.hits + cache.misses)
    speedup = cold_ms / warm_ms
    print(
        f"\nregion-cache warm path (repeated queries): uncached {cold_ms:.2f} ms | "
        f"warm {warm_ms:.2f} ms | x{speedup:.2f} (hit rate {hit_rate:.2f})"
    )
    assert matcher.last_statistics.regions_reused == 32
    assert speedup >= 2.0, (
        f"warm region cache should be >= 2x over uncached exploration "
        f"(observed x{speedup:.2f})"
    )
