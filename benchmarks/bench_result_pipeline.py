"""Result-pipeline throughput (ours) — columnar batches vs scalar bindings.

Measures the end-to-end cost of moving solutions from process-shard workers
to a finished ``ResultSet`` on a high-cardinality LUBM-style workload
(students × courses × teachers: a 60 000-embedding, three-variable
enrollment chain), comparing

* **batch + ring** — the default pipeline: columnar ``SolutionBatch``
  columns through the per-worker shared-memory rings, batch-aware operators
  (DISTINCT on packed id keys), ids decoded only at the results boundary;
* **scalar + queue** — the compatibility path as it behaved before the
  columnar refactor: per-``Binding`` dict streaming with solution batches
  pickled through the result queue (the ring is disabled on this engine, so
  the comparison includes the transport the refactor replaced).

Two workloads are reported; the DISTINCT one is the regression gate
(asserted ≥ 2× in process mode): it exercises everything the batch pipeline
is for — bulk transport, raw-id deduplication and late materialization of
only the surviving rows.  The full scan is reported unasserted: its cost is
dominated by materializing all 60 000 rows into dicts, which both pipelines
pay identically at the boundary.

Run with ``pytest benchmarks/bench_result_pipeline.py -q -s`` for the
timing table.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.engine.turbo_engine import TurboHomPPEngine
from repro.rdf.namespaces import Namespace
from repro.rdf.store import TripleStore
from repro.rdf.terms import Triple
from repro.sparql.parser import parse_sparql

EX = Namespace("http://example.org/")
PREFIX = "PREFIX ex: <http://example.org/> "

STUDENTS = 400
COURSES = 150
TEACHERS = 20

#: Full three-variable enumeration: every row is materialized at the
#: boundary, which both pipelines pay identically (reported, not gated).
SCAN_QUERY = PREFIX + (
    "SELECT ?x ?y ?z WHERE { ?x ex:takesCourse ?y . ?y ex:taughtBy ?z . }"
)
#: The gate workload: 60 000 wide rows deduplicate to a handful, so the
#: scalar path's per-row decode + dict costs dominate while the batch path
#: dedups raw id columns and materializes only the survivors.
DISTINCT_QUERY = PREFIX + (
    "SELECT DISTINCT ?z WHERE { ?x ex:takesCourse ?y . ?y ex:taughtBy ?z . }"
)

#: Timed rounds per (engine, query) pair.  The two engines are timed in
#: alternation and compared on *minima*, the standard low-noise estimator:
#: a scheduler spike inflates some rounds but never deflates one, so the
#: per-engine minimum converges on the true cost and the ratio stays stable
#: on loaded CI runners.
REPEATS = 7

#: The acceptance gate: batch must at least double scalar throughput on the
#: DISTINCT workload in process mode.
GATE = 2.0


@pytest.fixture(scope="module")
def course_store() -> TripleStore:
    """A LUBM-style enrollment graph with 60k three-variable embeddings."""
    store = TripleStore()
    triples = [
        Triple(EX[f"student{i}"], EX.takesCourse, EX[f"course{j}"])
        for i in range(STUDENTS)
        for j in range(COURSES)
    ]
    triples += [
        Triple(EX[f"course{j}"], EX.taughtBy, EX[f"teacher{j % TEACHERS}"])
        for j in range(COURSES)
    ]
    store.load(triples)
    store.freeze()
    return store


def _engine(store: TripleStore, pipeline: str, legacy_transport: bool) -> TurboHomPPEngine:
    engine = TurboHomPPEngine(
        workers=2, execution_mode="processes", result_pipeline=pipeline
    )
    engine.load(store)
    engine.bgp_solver()
    if legacy_transport:
        # Pre-columnar result transport: disable the shared-memory rings so
        # every worker batch pickles through the result queue (the pool is
        # not spawned yet, so the knob takes effect for every job).
        engine._executor.pool.ring_slots = 0
    return engine


def _interleaved_min_ms(engines, sparql: str):
    """Per-engine best-of-``REPEATS`` with rounds interleaved across engines,
    so a load drift on the host hits every engine the same way."""
    parsed = parse_sparql(sparql)
    for _, engine in engines:
        engine.query(parsed)  # warm: plan cache + worker pool + payload ship
    times = {label: [] for label, _ in engines}
    for _ in range(REPEATS):
        for label, engine in engines:
            begin = time.perf_counter()
            engine.query(parsed)
            times[label].append((time.perf_counter() - begin) * 1000.0)
    return {label: min(series) for label, series in times.items()}


def test_batch_pipeline_throughput_gate(course_store):
    batch = _engine(course_store, "batch", legacy_transport=False)
    scalar = _engine(course_store, "scalar", legacy_transport=True)
    try:
        total = len(batch.query(SCAN_QUERY))
        assert total == STUDENTS * COURSES

        engines = (("batch+ring", batch), ("scalar+queue", scalar))
        scan = _interleaved_min_ms(engines, SCAN_QUERY)
        distinct = _interleaved_min_ms(engines, DISTINCT_QUERY)
        rows = {
            label: {"scan": scan[label], "distinct": distinct[label]}
            for label, _ in engines
        }
        transport = batch.stats()["transport"]
        print(f"\nresult pipeline over {total} embeddings (process mode, 2 workers):")
        for label, timings in rows.items():
            print(
                f"  {label:13s} scan {timings['scan']:8.2f} ms   "
                f"DISTINCT {timings['distinct']:8.2f} ms"
            )
        scan_speedup = rows["scalar+queue"]["scan"] / rows["batch+ring"]["scan"]
        distinct_speedup = (
            rows["scalar+queue"]["distinct"] / rows["batch+ring"]["distinct"]
        )
        print(
            f"  speedup: scan x{scan_speedup:.2f}, DISTINCT x{distinct_speedup:.2f} "
            f"(ring batches {transport['ring_batches']}, "
            f"queue fallbacks {transport['queue_batches']}, "
            f"{transport['shm_bytes'] / 1e6:.1f} MB via shm)"
        )

        # The id-only workload must have crossed entirely through the rings.
        assert transport["ring_batches"] > 0
        assert transport["queue_batches"] == 0
        assert distinct_speedup >= GATE, (
            f"batch pipeline is only x{distinct_speedup:.2f} over scalar on the "
            f"DISTINCT workload (gate: x{GATE})"
        )
    finally:
        batch.close()
        scalar.close()


def test_batch_and_scalar_agree(course_store):
    """The throughput comparison is only meaningful if results match."""
    batch = _engine(course_store, "batch", legacy_transport=False)
    scalar = _engine(course_store, "scalar", legacy_transport=True)
    try:
        for sparql in (DISTINCT_QUERY, SCAN_QUERY):
            assert batch.query(sparql).same_solutions(scalar.query(sparql)), sparql
    finally:
        batch.close()
        scalar.close()
