"""Shared fixtures for the benchmark suite.

Every table/figure of the paper has its own ``bench_*.py`` file.  Datasets
and loaded engines are session-scoped so the generation / index-building cost
is paid once; the pytest-benchmark fixture then times only query evaluation.

Run with:  pytest benchmarks/ --benchmark-only
Add ``-s`` to see the reproduced tables printed to stdout.
"""

from __future__ import annotations

import pytest

from repro.baselines import BitmapEngine, RDF3XEngine, TripleBitEngine
from repro.datasets import load_bsbm, load_btc, load_lubm, load_yago
from repro.engine.turbo_engine import TurboHomEngine, TurboHomPPEngine
from repro.graph.labeled_graph import GraphBuilder
from repro.graph.query_graph import QueryGraph

#: Scale factors standing in for LUBM80 / LUBM800 / LUBM8000.
LUBM_SCALES = (1, 2, 4)
#: The scale used by the single-dataset studies (Tables 7, Figures 15/16).
LUBM_LARGE_SCALE = 4


def report(*tables) -> None:
    """Print reproduced tables (visible with ``pytest -s``)."""
    for table in tables:
        print()
        print(table.to_text())


# ------------------------------------------- synthetic star-closure workload
#: Vertex / edge labels of the star-closure probe graphs.
HUB, SPOKE = 0, 1
LINK, CROSS = 0, 1


def star_closure_graph(spokes: int, hubs: int = 1):
    """Star-with-chord clusters: each hub fans out, consecutive spokes chord.

    With one hub this is the +INT ablation workload (one large candidate
    set whose non-tree chord edge must be verified, Figure 11); with many
    hubs the start-candidate list is long enough for dynamic chunking to
    spread across parallel shard workers (Figure 16 probe).
    """
    builder = GraphBuilder()
    vertex = 0
    for _ in range(hubs):
        hub = vertex
        builder.add_vertex(hub, (HUB,))
        vertex += 1
        first_spoke = vertex
        for _ in range(spokes):
            builder.add_vertex(vertex, (SPOKE,))
            builder.add_edge(hub, LINK, vertex)
            vertex += 1
        for spoke in range(first_spoke, vertex - 1):
            builder.add_edge(spoke, CROSS, spoke + 1)
    return builder.build()


def chord_query() -> QueryGraph:
    """``hub→a, hub→b, a→b`` — the chord pattern over a star cluster."""
    query = QueryGraph()
    hub = query.add_vertex("hub", frozenset((HUB,)))
    a = query.add_vertex("a", frozenset((SPOKE,)))
    b = query.add_vertex("b", frozenset((SPOKE,)))
    query.add_edge(hub, a, LINK)
    query.add_edge(hub, b, LINK)
    query.add_edge(a, b, CROSS)
    return query


@pytest.fixture(scope="session")
def lubm_small():
    """LUBM at the smallest scale."""
    return load_lubm(universities=LUBM_SCALES[0])


@pytest.fixture(scope="session")
def lubm_large():
    """LUBM at the largest benchmark scale."""
    return load_lubm(universities=LUBM_LARGE_SCALE)


@pytest.fixture(scope="session")
def yago_dataset():
    """The YAGO-like dataset."""
    return load_yago()


@pytest.fixture(scope="session")
def btc_dataset():
    """The BTC-like dataset."""
    return load_btc()


@pytest.fixture(scope="session")
def bsbm_dataset():
    """The BSBM-like dataset."""
    return load_bsbm()


def _load_engines(dataset, engine_classes):
    engines = {}
    for engine_class in engine_classes:
        engine = engine_class()
        engine.load(dataset.store)
        engines[engine.name] = engine
    return engines


@pytest.fixture(scope="session")
def lubm_large_engines(lubm_large):
    """All four engines loaded with the large LUBM dataset."""
    return _load_engines(
        lubm_large, (TurboHomPPEngine, TurboHomEngine, RDF3XEngine, TripleBitEngine, BitmapEngine)
    )


@pytest.fixture(scope="session")
def bsbm_engines(bsbm_dataset):
    """TurboHOM++ and the bitmap engine loaded with BSBM (the Table 6 line-up)."""
    return _load_engines(bsbm_dataset, (TurboHomPPEngine, BitmapEngine))


@pytest.fixture(scope="session")
def yago_engines(yago_dataset):
    """All engines loaded with the YAGO-like dataset."""
    return _load_engines(
        yago_dataset, (TurboHomPPEngine, RDF3XEngine, TripleBitEngine, BitmapEngine)
    )


@pytest.fixture(scope="session")
def btc_engines(btc_dataset):
    """All engines loaded with the BTC-like dataset."""
    return _load_engines(
        btc_dataset, (TurboHomPPEngine, RDF3XEngine, TripleBitEngine, BitmapEngine)
    )
