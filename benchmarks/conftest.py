"""Shared fixtures for the benchmark suite.

Every table/figure of the paper has its own ``bench_*.py`` file.  Datasets
and loaded engines are session-scoped so the generation / index-building cost
is paid once; the pytest-benchmark fixture then times only query evaluation.

Run with:  pytest benchmarks/ --benchmark-only
Add ``-s`` to see the reproduced tables printed to stdout.
"""

from __future__ import annotations

import pytest

from repro.baselines import BitmapEngine, RDF3XEngine, TripleBitEngine
from repro.datasets import load_bsbm, load_btc, load_lubm, load_yago
from repro.engine.turbo_engine import TurboHomEngine, TurboHomPPEngine

#: Scale factors standing in for LUBM80 / LUBM800 / LUBM8000.
LUBM_SCALES = (1, 2, 4)
#: The scale used by the single-dataset studies (Tables 7, Figures 15/16).
LUBM_LARGE_SCALE = 4


def report(*tables) -> None:
    """Print reproduced tables (visible with ``pytest -s``)."""
    for table in tables:
        print()
        print(table.to_text())


@pytest.fixture(scope="session")
def lubm_small():
    """LUBM at the smallest scale."""
    return load_lubm(universities=LUBM_SCALES[0])


@pytest.fixture(scope="session")
def lubm_large():
    """LUBM at the largest benchmark scale."""
    return load_lubm(universities=LUBM_LARGE_SCALE)


@pytest.fixture(scope="session")
def yago_dataset():
    """The YAGO-like dataset."""
    return load_yago()


@pytest.fixture(scope="session")
def btc_dataset():
    """The BTC-like dataset."""
    return load_btc()


@pytest.fixture(scope="session")
def bsbm_dataset():
    """The BSBM-like dataset."""
    return load_bsbm()


def _load_engines(dataset, engine_classes):
    engines = {}
    for engine_class in engine_classes:
        engine = engine_class()
        engine.load(dataset.store)
        engines[engine.name] = engine
    return engines


@pytest.fixture(scope="session")
def lubm_large_engines(lubm_large):
    """All four engines loaded with the large LUBM dataset."""
    return _load_engines(
        lubm_large, (TurboHomPPEngine, TurboHomEngine, RDF3XEngine, TripleBitEngine, BitmapEngine)
    )


@pytest.fixture(scope="session")
def bsbm_engines(bsbm_dataset):
    """TurboHOM++ and the bitmap engine loaded with BSBM (the Table 6 line-up)."""
    return _load_engines(bsbm_dataset, (TurboHomPPEngine, BitmapEngine))


@pytest.fixture(scope="session")
def yago_engines(yago_dataset):
    """All engines loaded with the YAGO-like dataset."""
    return _load_engines(
        yago_dataset, (TurboHomPPEngine, RDF3XEngine, TripleBitEngine, BitmapEngine)
    )


@pytest.fixture(scope="session")
def btc_engines(btc_dataset):
    """All engines loaded with the BTC-like dataset."""
    return _load_engines(
        btc_dataset, (TurboHomPPEngine, RDF3XEngine, TripleBitEngine, BitmapEngine)
    )
