"""Columnar aggregation and hybrid-join spill overhead (ours).

Two regression gates over the LUBM-style enrollment graph (students ×
courses × teachers: a 60 000-embedding, three-variable chain):

* **Aggregation gate** — ``GROUP BY ?z`` + ``COUNT`` over the full chain.
  The batch pipeline groups on raw id columns and decodes only the emitted
  groups (20 teachers), while the scalar pipeline materializes and decodes
  all 60 000 rows before counting; the columnar kernel must be ≥ 2× faster
  (asserted on interleaved minima).
* **Spill gate** — a left-outer join whose 60 000-row build side is forced
  through the hybrid hash join's spill path by a byte budget far below the
  build size.  At least half the partitions must spill, the results must
  be identical to the unbounded join, and the spilling run must stay
  within 3× of the unbounded one (graceful degradation, not a cliff).

Run with ``pytest benchmarks/bench_aggregation_join.py -q -s`` for the
timing table.
"""

from __future__ import annotations

import time

import pytest

from repro.engine.turbo_engine import TurboHomPPEngine
from repro.rdf.namespaces import Namespace
from repro.rdf.store import TripleStore
from repro.rdf.terms import Triple
from repro.sparql.parser import parse_sparql

EX = Namespace("http://example.org/")
PREFIX = "PREFIX ex: <http://example.org/> "

STUDENTS = 400
COURSES = 150
TEACHERS = 20

#: The aggregation gate workload: 60 000 embeddings collapse to 20 groups,
#: so the batch kernel's late materialization (decode 20 group keys, not
#: 60 000 rows) is exactly what is being measured.
GROUP_QUERY = PREFIX + (
    "SELECT ?z (COUNT(?x) AS ?n) (COUNT(DISTINCT ?x) AS ?d) WHERE "
    "{ ?x ex:takesCourse ?y . ?y ex:taughtBy ?z . } GROUP BY ?z"
)

#: The spill gate workload: the OPTIONAL group (the join's build side) is
#: the full 60 000-row enrollment relation, far beyond the spill budget.
SPILL_QUERY = PREFIX + (
    "SELECT ?x ?i ?c WHERE { ?x ex:id ?i . OPTIONAL { ?x ex:takesCourse ?c } }"
)

#: Byte budget of the spilling engine: ~1/15 of the build side's resident
#: estimate (60 000 rows × 2 id columns × 8 bytes ≈ 960 kB).
SPILL_BUDGET = 64 * 1024
SPILL_FANOUT = 8

REPEATS = 5

AGGREGATION_GATE = 2.0
SPILL_OVERHEAD_GATE = 3.0


@pytest.fixture(scope="module")
def course_store() -> TripleStore:
    """A LUBM-style enrollment graph with 60k three-variable embeddings."""
    store = TripleStore()
    triples = [
        Triple(EX[f"student{i}"], EX.takesCourse, EX[f"course{j}"])
        for i in range(STUDENTS)
        for j in range(COURSES)
    ]
    triples += [
        Triple(EX[f"course{j}"], EX.taughtBy, EX[f"teacher{j % TEACHERS}"])
        for j in range(COURSES)
    ]
    triples += [
        Triple(EX[f"student{i}"], EX.id, EX[f"id{i}"]) for i in range(STUDENTS)
    ]
    store.load(triples)
    store.freeze()
    return store


def _interleaved_min_ms(engines, sparql: str):
    """Per-engine best-of-``REPEATS`` with rounds interleaved across engines,
    so a load drift on the host hits every engine the same way."""
    parsed = parse_sparql(sparql)
    for _, engine in engines:
        engine.query(parsed)  # warm: plan cache + matcher state
    times = {label: [] for label, _ in engines}
    for _ in range(REPEATS):
        for label, engine in engines:
            begin = time.perf_counter()
            engine.query(parsed)
            times[label].append((time.perf_counter() - begin) * 1000.0)
    return {label: min(series) for label, series in times.items()}


def test_columnar_aggregation_gate(course_store):
    batch = TurboHomPPEngine(execution_mode="threads", result_pipeline="batch")
    scalar = TurboHomPPEngine(execution_mode="threads", result_pipeline="scalar")
    batch.load(course_store)
    scalar.load(course_store)
    try:
        left = batch.query(GROUP_QUERY)
        right = scalar.query(GROUP_QUERY)
        assert len(left) == TEACHERS
        assert left.grouped_counts(["z"], ["n", "d"]) == right.grouped_counts(
            ["z"], ["n", "d"]
        )

        engines = (("batch", batch), ("scalar", scalar))
        timings = _interleaved_min_ms(engines, GROUP_QUERY)
        speedup = timings["scalar"] / timings["batch"]
        operators = batch.stats()["operators"]
        print(
            f"\nGROUP BY + COUNT over {STUDENTS * COURSES} embeddings "
            f"({TEACHERS} groups):"
        )
        for label, ms in timings.items():
            print(f"  {label:7s} {ms:8.2f} ms")
        print(
            f"  speedup x{speedup:.2f} "
            f"(groups emitted {operators['groups_emitted']}, "
            f"rows decoded {operators['rows_decoded']})"
        )
        assert speedup >= AGGREGATION_GATE, (
            f"columnar aggregation is only x{speedup:.2f} over the scalar "
            f"pipeline (gate: x{AGGREGATION_GATE})"
        )
    finally:
        batch.close()
        scalar.close()


def test_hybrid_join_spill_gate(course_store):
    unbounded = TurboHomPPEngine(
        execution_mode="threads", result_pipeline="batch", join_memory_bytes=0
    )
    spilling = TurboHomPPEngine(
        execution_mode="threads", result_pipeline="batch",
        join_memory_bytes=SPILL_BUDGET, join_partitions=SPILL_FANOUT,
    )
    unbounded.load(course_store)
    spilling.load(course_store)
    try:
        oracle = unbounded.query(SPILL_QUERY)
        spilled = spilling.query(SPILL_QUERY)
        assert len(oracle) == STUDENTS * COURSES
        assert spilled.same_solutions(oracle)

        operators = spilling.stats()["operators"]
        assert operators["spilled_partitions"] >= SPILL_FANOUT // 2, (
            f"only {operators['spilled_partitions']} of {SPILL_FANOUT} "
            "partitions spilled; the budget did not exercise the spill path"
        )

        engines = (("unbounded", unbounded), ("spilling", spilling))
        timings = _interleaved_min_ms(engines, SPILL_QUERY)
        overhead = timings["spilling"] / timings["unbounded"]
        operators = spilling.stats()["operators"]
        print(
            f"\nhybrid join, {STUDENTS * COURSES}-row build side, "
            f"{SPILL_BUDGET // 1024} kB budget, fanout {SPILL_FANOUT}:"
        )
        for label, ms in timings.items():
            print(f"  {label:9s} {ms:8.2f} ms")
        print(
            f"  overhead x{overhead:.2f} "
            f"(partitions spilled {operators['spilled_partitions']}, "
            f"{operators['spilled_bytes'] / 1e6:.1f} MB spilled, "
            f"repartitions {operators['repartitions']}, "
            f"fallbacks {operators['join_fallbacks']})"
        )
        assert overhead <= SPILL_OVERHEAD_GATE, (
            f"spilling join is x{overhead:.2f} over the unbounded join "
            f"(gate: x{SPILL_OVERHEAD_GATE})"
        )
    finally:
        unbounded.close()
        spilling.close()
