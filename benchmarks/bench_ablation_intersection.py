"""Ablation (ours) — the +INT bulk-intersection IsJoinable vs per-candidate probes.

Section 4.3 argues the k-way intersection strategy is asymptotically no worse
than per-candidate binary-search probes (it can always fall back), and much
better when candidate sets are large.  This ablation times both strategies on
the triangle queries and on a synthetic star-plus-closure workload whose
candidate sets grow, verifying the crossover direction.
"""

from __future__ import annotations

import pytest
from conftest import chord_query, report, star_closure_graph

from repro.bench import experiments
from repro.matching.config import MatchConfig
from repro.matching.turbo import TurboMatcher


def test_ablation_report(benchmark):
    """LUBM triangle queries with and without +INT."""
    table = benchmark.pedantic(
        lambda: experiments.ablation_intersection(scale=2, repeats=3), rounds=1, iterations=1
    )
    report(table)
    assert len(table.rows) == 2


@pytest.mark.parametrize("use_intersection", [True, False], ids=["+INT", "probe"])
def test_ablation_star_closure(benchmark, use_intersection):
    """Synthetic large-candidate-set workload: +INT should not lose, and the
    solution counts must be identical either way."""
    graph = star_closure_graph(spokes=2000)
    query = chord_query()
    config = MatchConfig.turbo_hom_pp()
    if not use_intersection:
        config = config.without("INT")
    matcher = TurboMatcher(graph, config)
    solutions = benchmark(matcher.match, query)
    assert len(solutions) == 1999
