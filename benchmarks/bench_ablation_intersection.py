"""Ablation (ours) — the +INT bulk-intersection IsJoinable vs per-candidate probes.

Section 4.3 argues the k-way intersection strategy is asymptotically no worse
than per-candidate binary-search probes (it can always fall back), and much
better when candidate sets are large.  This ablation times both strategies on
the triangle queries and on a synthetic star-plus-closure workload whose
candidate sets grow, verifying the crossover direction.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.bench import experiments
from repro.graph.labeled_graph import GraphBuilder
from repro.graph.query_graph import QueryGraph
from repro.matching.config import MatchConfig
from repro.matching.turbo import TurboMatcher

HUB, SPOKE = 0, 1
LINK, CROSS = 0, 1


def _star_with_closure(spokes: int):
    """A hub connected to many spokes, with a chord between consecutive spokes.

    Matching ``hub→a, hub→b, a→b`` produces one large candidate set on which
    the non-tree edge (a→b) must be verified — exactly the situation +INT
    targets (Figure 11 of the paper).
    """
    builder = GraphBuilder()
    builder.add_vertex(0, (HUB,))
    for index in range(1, spokes + 1):
        builder.add_vertex(index, (SPOKE,))
        builder.add_edge(0, LINK, index)
    for index in range(1, spokes):
        builder.add_edge(index, CROSS, index + 1)
    return builder.build()


def _chord_query() -> QueryGraph:
    query = QueryGraph()
    hub = query.add_vertex("hub", frozenset((HUB,)))
    a = query.add_vertex("a", frozenset((SPOKE,)))
    b = query.add_vertex("b", frozenset((SPOKE,)))
    query.add_edge(hub, a, LINK)
    query.add_edge(hub, b, LINK)
    query.add_edge(a, b, CROSS)
    return query


def test_ablation_report(benchmark):
    """LUBM triangle queries with and without +INT."""
    table = benchmark.pedantic(
        lambda: experiments.ablation_intersection(scale=2, repeats=3), rounds=1, iterations=1
    )
    report(table)
    assert len(table.rows) == 2


@pytest.mark.parametrize("use_intersection", [True, False], ids=["+INT", "probe"])
def test_ablation_star_closure(benchmark, use_intersection):
    """Synthetic large-candidate-set workload: +INT should not lose, and the
    solution counts must be identical either way."""
    graph = _star_with_closure(spokes=2000)
    query = _chord_query()
    config = MatchConfig.turbo_hom_pp()
    if not use_intersection:
        config = config.without("INT")
    matcher = TurboMatcher(graph, config)
    solutions = benchmark(matcher.match, query)
    assert len(solutions) == 1999
