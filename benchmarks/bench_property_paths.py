"""Property-path reachability index vs the BFS kernel — the PR-7 perf gate.

Workload: a deep 2000-edge ``p`` chain with four 50-vertex cyclic hubs
hanging off its tail (the condensation therefore mixes 2000+ singleton
SCCs with large cyclic SCCs), and 250 ``q`` candidate edges sampled over
chain/hub vertex pairs.  The probe query

    SELECT ?s ?t WHERE { ?s q ?t . ?s p+ ?t }

turns every ``q`` row into a bound-bound ``p+`` reachability probe: the
interval-labelled index answers each probe with an O(1) label comparison
(or a closure-row bisect), while the ``path_index_bytes=0`` fallback pays
one early-exit BFS over up to the whole chain per row.

Rounds alternate between the two engines and the gate compares *minima*
(the least-noise estimate of each side's true cost): the indexed engine
must be >= 5x faster.  Run with ``pytest benchmarks/bench_property_paths.py
-q -s`` to see the table; the assertion makes this file a CI gate.
"""

from __future__ import annotations

import gc
import random
import time
from collections import Counter
from typing import List

from repro.engine.turbo_engine import TurboHomPPEngine
from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI, Triple

P = IRI("http://bench.test/p")
Q = IRI("http://bench.test/q")

CHAIN = 2000
HUBS = 4
HUB_SIZE = 50
PROBES = 250
ROUNDS = 7


def chain_node(i: int) -> IRI:
    return IRI(f"http://bench.test/c{i}")


def hub_node(hub: int, i: int) -> IRI:
    return IRI(f"http://bench.test/h{hub}_{i}")


def build_store() -> TripleStore:
    store = TripleStore()
    for i in range(CHAIN):
        store.add(Triple(chain_node(i), P, chain_node(i + 1)))
    for hub in range(HUBS):
        for i in range(HUB_SIZE):
            store.add(Triple(hub_node(hub, i), P, hub_node(hub, (i + 1) % HUB_SIZE)))
        # The chain tail feeds every hub: cyclic SCCs sit below the chain
        # in the condensation instead of forming a disconnected island.
        store.add(Triple(chain_node(CHAIN), P, hub_node(hub, 0)))
    rng = random.Random(20150707)
    seen = set()
    while len(seen) < PROBES:
        kind = rng.randrange(4)
        if kind < 2:  # chain-to-chain, both directions (hit and miss probes)
            pair = (chain_node(rng.randrange(CHAIN)), chain_node(rng.randrange(CHAIN)))
        elif kind == 2:  # within one cyclic hub (always reachable)
            hub = rng.randrange(HUBS)
            pair = (
                hub_node(hub, rng.randrange(HUB_SIZE)),
                hub_node(hub, rng.randrange(HUB_SIZE)),
            )
        else:  # chain into a hub (deepest BFS walks)
            pair = (
                chain_node(rng.randrange(CHAIN)),
                hub_node(rng.randrange(HUBS), rng.randrange(HUB_SIZE)),
            )
        if pair not in seen:
            seen.add(pair)
            store.add(Triple(pair[0], Q, pair[1]))
    return store


PROBE_QUERY = (
    f"SELECT ?s ?t WHERE {{ ?s <{Q}> ?t . ?s <{P}>+ ?t }}"
)


def rows_multiset(result) -> Counter:
    variables = sorted(result.variables)
    return Counter(tuple(str(b[v]) for v in variables) for b in result)


def test_path_index_beats_bfs_kernel():
    """Indexed bound-bound ``p+`` probes >= 5x over the BFS fallback."""
    store = build_store()
    indexed = TurboHomPPEngine()
    fallback = TurboHomPPEngine(path_index_bytes=0)
    try:
        indexed.load(store)
        fallback.load(store)

        # Parity first (also warms plan caches and builds the index).
        expected = rows_multiset(indexed.query(PROBE_QUERY))
        assert rows_multiset(fallback.query(PROBE_QUERY)) == expected
        assert expected, "probe workload must produce reachable pairs"

        indexed_times: List[float] = []
        fallback_times: List[float] = []
        gc.disable()
        try:
            for _ in range(ROUNDS):
                begin = time.perf_counter()
                assert rows_multiset(fallback.query(PROBE_QUERY)) == expected
                fallback_times.append(time.perf_counter() - begin)
                begin = time.perf_counter()
                assert rows_multiset(indexed.query(PROBE_QUERY)) == expected
                indexed_times.append(time.perf_counter() - begin)
        finally:
            gc.enable()

        bfs_ms = min(fallback_times) * 1000.0
        idx_ms = min(indexed_times) * 1000.0
        speedup = bfs_ms / idx_ms
        stats = indexed.stats()["path_index"]
        print(
            f"\nproperty-path probes ({PROBES} bound-bound p+ rows, "
            f"chain={CHAIN}, hubs={HUBS}x{HUB_SIZE}):\n"
            f"  BFS kernel {bfs_ms:8.2f} ms | index {idx_ms:8.2f} ms | "
            f"x{speedup:.2f}\n"
            f"  index: builds={stats['builds']} bytes={stats['bytes']} "
            f"closure_hits={stats['closure_hits']} "
            f"interval_rejects={stats['interval_rejects']} "
            f"pruned_walks={stats['pruned_walks']}"
        )
        assert stats["builds"] == 1 and stats["bfs_fallbacks"] == 0
        assert fallback.stats()["path_index"]["bfs_fallbacks"] > 0
        assert speedup >= 5.0, (
            f"reachability index should be >= 5x over the BFS kernel on the "
            f"deep-chain + cyclic-hub probe workload (observed x{speedup:.2f})"
        )
    finally:
        indexed.close()
        fallback.close()
