"""Table 5 — BTC query set: number of solutions and elapsed times.

The BTC-like workload is heterogeneous but its queries are tree-shaped and
several pin a concrete entity, so every engine is fast; the claim reproduced
is that TurboHOM++ still wins in aggregate.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.bench import experiments


def test_table5_report(benchmark):
    """Regenerate Table 5 and assert the aggregate ordering."""
    table = benchmark.pedantic(lambda: experiments.table5_btc(repeats=3), rounds=1, iterations=1)
    report(table)
    turbo_total = sum(v for v in table.column("TurboHOM++") if isinstance(v, (int, float)))
    for competitor in ("RDF-3X", "TripleBit"):
        competitor_total = sum(v for v in table.column(competitor) if isinstance(v, (int, float)))
        assert turbo_total < competitor_total, f"TurboHOM++ should beat {competitor} on BTC"
    # Every query returns some answer (the generator guarantees non-empty results
    # for the pinned entities).
    assert all(isinstance(v, int) and v >= 0 for v in table.column("#solutions"))


@pytest.mark.parametrize("query_id", ["Q2", "Q6", "Q8"])
def test_table5_turbohompp_query(benchmark, btc_dataset, btc_engines, query_id):
    """Per-query TurboHOM++ timings on the BTC-like dataset."""
    engine = btc_engines["TurboHOM++"]
    result = benchmark(engine.query, btc_dataset.queries[query_id])
    assert len(result) >= 0


def test_table5_bitmap_q8(benchmark, btc_dataset, btc_engines):
    """The bitmap engine on the largest BTC query (friend-of-friend join)."""
    engine = btc_engines["System-X*"]
    result = benchmark(engine.query, btc_dataset.queries["Q8"])
    assert len(result) > 0
