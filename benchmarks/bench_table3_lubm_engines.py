"""Table 3 — elapsed time of TurboHOM++ vs RDF-3X / TripleBit / System-X on LUBM.

Two claims from the paper are asserted (Section 7.2):

* TurboHOM++ is the fastest engine on (the aggregate of) the LUBM queries,
* for constant-solution queries, the scan-then-join baselines slow down as
  the dataset grows while TurboHOM++ stays (nearly) flat, because its work is
  bounded by one candidate region.

Absolute numbers are pure-Python milliseconds; only the ordering and scaling
shape are claimed.
"""

from __future__ import annotations

import pytest
from conftest import LUBM_SCALES, report

from repro.bench import experiments
from repro.bench.harness import run_query


def test_table3_report(benchmark):
    """Regenerate Table 3 (one sub-table per scale) and assert who wins."""
    tables = benchmark.pedantic(
        lambda: experiments.table3_lubm_engines(lubm_scales=LUBM_SCALES, repeats=3),
        rounds=1,
        iterations=1,
    )
    report(*tables)

    for table in tables:
        turbo_total = sum(v for v in table.column("TurboHOM++") if isinstance(v, (int, float)))
        # The scan-then-join engines lose in aggregate at every scale.
        for competitor in ("RDF-3X", "TripleBit"):
            competitor_total = sum(
                v for v in table.column(competitor) if isinstance(v, (int, float))
            )
            assert turbo_total < competitor_total, (
                f"TurboHOM++ should beat {competitor} in aggregate on {table.title}"
            )
        # System-X is the strongest competitor on selective queries but loses
        # on the most expensive ones (the paper's observation for Q2/Q9).
        queries = table.column("query")
        for heavy in ("Q2", "Q9"):
            index = queries.index(heavy)
            turbo_time = table.column("TurboHOM++")[index]
            bitmap_time = table.column("System-X*")[index]
            assert turbo_time <= bitmap_time * 1.25, (
                f"TurboHOM++ should not lose {heavy} to the bitmap engine on {table.title}"
            )

    # Scaling shape on a constant-solution query: the RDF-3X-style baseline
    # degrades with the scale factor while TurboHOM++ stays within noise.
    small, large = tables[0], tables[-1]
    q4_index = small.column("query").index("Q4")
    rdf3x_growth = large.column("RDF-3X")[q4_index] / max(small.column("RDF-3X")[q4_index], 1e-9)
    turbo_small = small.column("TurboHOM++")[q4_index]
    turbo_large = large.column("TurboHOM++")[q4_index]
    assert rdf3x_growth > 1.5, "scan-then-join cost should grow with dataset size on Q4"
    assert turbo_large < turbo_small * max(2.0, rdf3x_growth), (
        "TurboHOM++ should scale better than RDF-3X on the constant-solution query Q4"
    )


@pytest.mark.parametrize("query_id", ["Q1", "Q2", "Q4", "Q9", "Q14"])
def test_table3_turbohompp_query(benchmark, lubm_large, lubm_large_engines, query_id):
    """Per-query TurboHOM++ timings on the large LUBM dataset."""
    engine = lubm_large_engines["TurboHOM++"]
    sparql = lubm_large.queries[query_id]
    result = benchmark(engine.query, sparql)
    assert len(result) >= 0


@pytest.mark.parametrize("engine_name", ["RDF-3X", "TripleBit", "System-X*"])
def test_table3_baseline_q2(benchmark, lubm_large, lubm_large_engines, engine_name):
    """Baseline engines on the long-running triangle query Q2."""
    engine = lubm_large_engines[engine_name]
    result = benchmark(engine.query, lubm_large.queries["Q2"])
    assert len(result) > 0


def test_table3_turbohompp_beats_baselines_on_q2(lubm_large, lubm_large_engines):
    """Point check of the headline claim on the most expensive query."""
    timings = {
        name: run_query(engine, "Q2", lubm_large.queries["Q2"], repeats=3).elapsed_ms
        for name, engine in lubm_large_engines.items()
        if name != "TurboHOM"
    }
    assert timings["TurboHOM++"] == min(timings.values())
