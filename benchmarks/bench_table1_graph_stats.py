"""Table 1 — graph size statistics under direct vs type-aware transformation.

The paper's Table 1 reports |V| and |E| of every dataset under both
transformations; the headline property is that the type-aware transformation
removes every rdf:type / rdfs:subClassOf edge (and the class vertices), so
|E| shrinks substantially, which directly reduces graph exploration.
"""

from __future__ import annotations

from conftest import LUBM_SCALES, report

from repro.bench import experiments
from repro.graph.transform import direct_transform, type_aware_transform


def test_table1_report(benchmark):
    """Regenerate Table 1 and check the type-aware graphs are strictly smaller."""
    table = benchmark.pedantic(
        lambda: experiments.table1_graph_stats(lubm_scales=LUBM_SCALES),
        rounds=1,
        iterations=1,
    )
    report(table)
    for row in table.rows:
        _, v_direct, e_direct, v_typed, e_typed = row
        assert e_typed < e_direct, "type-aware transformation must remove edges"
        assert v_typed <= v_direct, "type-aware transformation must not add vertices"


def test_table1_direct_transform_cost(benchmark, lubm_large):
    """Time the direct transformation of the large LUBM store."""
    graph, _ = benchmark(direct_transform, lubm_large.store)
    assert graph.edge_count == len(lubm_large.store)


def test_table1_type_aware_transform_cost(benchmark, lubm_large):
    """Time the type-aware transformation of the large LUBM store."""
    graph, _ = benchmark(type_aware_transform, lubm_large.store)
    assert graph.edge_count < len(lubm_large.store)
