"""Figure 16 — parallel speed-up on Q2 and Q9 with a growing worker count.

The paper shows near-linear (even super-linear) wall-clock speed-up on a
4-socket NUMA machine.  In thread mode CPython's GIL makes wall-clock
speed-up unrepresentative, and in process mode it additionally requires as
many free cores as workers, so the assertions target the quantity the
experiment is really about: dynamic chunks of starting vertices partition
the work evenly, i.e. the (simulated) dynamic-schedule speed-up grows with
the worker count.  Both metrics are printed, for the thread pool *and* for
the shared-memory process shard pool.
"""

from __future__ import annotations

import statistics

import pytest
from conftest import LUBM_LARGE_SCALE, chord_query, report, star_closure_graph

from repro.bench import experiments
from repro.datasets import load_lubm
from repro.graph.transform import type_aware_transform, type_aware_transform_query
from repro.matching.config import MatchConfig
from repro.matching.parallel import ParallelMatcher
from repro.matching.process_shard import ProcessShardPool
from repro.sparql.parser import parse_sparql

WORKER_COUNTS = (1, 2, 4, 8)


@pytest.mark.parametrize("mode", ["threads", "processes"])
def test_figure16_report(benchmark, mode):
    """Regenerate Figure 16 (as a table) and assert the load-balance claim."""
    table = benchmark.pedantic(
        lambda: experiments.figure16_parallel(
            scale=LUBM_LARGE_SCALE, workers=WORKER_COUNTS, mode=mode
        ),
        rounds=1,
        iterations=1,
    )
    report(table)
    # For each query, the simulated dynamic-chunk speed-up must grow with the
    # number of workers and reach a substantial fraction of the worker count.
    for query_id in ("Q2", "Q9"):
        rows = [row for row in table.rows if row[0] == query_id]
        speedups = {row[1]: row[4] for row in rows}
        assert speedups[1] == pytest.approx(1.0)
        assert speedups[4] > 2.0, f"4 workers should at least halve the critical path for {query_id}"
        assert speedups[8] >= speedups[4] * 0.9, "more workers should not hurt the schedule"


@pytest.fixture(scope="module")
def parallel_setup():
    """Type-aware graph and the Q9 query graph for the worker-scaling benchmarks."""
    dataset = load_lubm(universities=LUBM_LARGE_SCALE)
    graph, mapping = type_aware_transform(dataset.store)
    parsed = parse_sparql(dataset.queries["Q9"]).strip_modifiers()
    query_graph = type_aware_transform_query(parsed.where.triples, mapping).query_graph
    return graph, query_graph


@pytest.mark.parametrize("workers", [1, 4])
def test_figure16_parallel_matcher_q9(benchmark, parallel_setup, workers):
    """End-to-end parallel matching of Q9 with 1 vs 4 workers."""
    graph, query_graph = parallel_setup
    matcher = ParallelMatcher(graph, MatchConfig.turbo_hom_pp(), workers=workers, chunk_size=4)
    solutions, stats = benchmark(matcher.match, query_graph)
    assert stats.solutions == len(solutions)
    assert len(solutions) > 0


@pytest.mark.parametrize("workers", [1, 4])
def test_figure16_process_shards_q9(benchmark, parallel_setup, workers):
    """End-to-end process-shard matching of Q9 with 1 vs 4 workers."""
    graph, query_graph = parallel_setup
    pool = ProcessShardPool(graph, MatchConfig.turbo_hom_pp(), workers=workers, chunk_size=4)
    try:
        solutions, stats = benchmark(pool.match, query_graph)
    finally:
        pool.close()
    assert stats.solutions == len(solutions)
    assert len(solutions) > 0


# ------------------------------------------------------- star-closure probe
def test_figure16_star_closure_process_probe():
    """4 process shards must at least halve the star-closure critical path.

    The acceptance metric is the dynamic-schedule speed-up (total work over
    the busiest worker) over repeated runs — the Figure 16 load-balance
    quantity, which wall-clock only realizes when the host actually has 4
    free cores.  Wall-clock medians for both series are printed alongside.
    """
    hubs, spokes = 48, 60
    graph = star_closure_graph(spokes=spokes, hubs=hubs)
    query = chord_query()
    expected = hubs * (spokes - 1)

    def run_series(workers: int):
        pool = ProcessShardPool(
            graph, MatchConfig.turbo_hom_pp(), workers=workers, chunk_size=1
        )
        elapsed, speedups = [], []
        try:
            for _ in range(3):
                solutions, stats = pool.match(query)
                assert len(solutions) == expected
                elapsed.append(stats.elapsed_ms)
                speedups.append(stats.simulated_speedup(workers))
        finally:
            pool.close()
        return statistics.median(elapsed), statistics.median(speedups)

    single_ms, single_speedup = run_series(1)
    quad_ms, quad_speedup = run_series(4)
    print(
        f"\nstar-closure probe: 1 worker {single_ms:.1f} ms | 4 workers {quad_ms:.1f} ms "
        f"(wall-clock x{single_ms / quad_ms if quad_ms else float('nan'):.2f}), "
        f"dynamic-schedule speedup x{quad_speedup:.2f}"
    )
    assert single_speedup == pytest.approx(1.0)
    assert quad_speedup >= 2.0, (
        "4 shard workers should at least halve the star-closure critical path"
    )
