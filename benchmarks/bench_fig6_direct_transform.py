"""Figure 6 — TurboHOM (direct transformation) vs the RDF engines.

Figure 6 motivates TurboHOM++: even the *unoptimized* homomorphism matcher on
the directly transformed graph is competitive — faster on the selective
(constant-solution) queries because it explores one candidate region, but not
uniformly fastest on the long-running queries.  We assert the first half of
that observation (TurboHOM wins the selective queries against the
scan-then-join baseline).
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.bench import experiments

#: Selective queries on which Figure 6 shows TurboHOM ahead of the engines.
SELECTIVE_QUERIES = ("Q1", "Q3", "Q4", "Q5", "Q7", "Q10", "Q11", "Q12")


def test_figure6_report(benchmark):
    """Regenerate Figure 6 (as a table) and check its qualitative content.

    At laptop scale the baseline's scans are tiny, so TurboHOM's absolute win
    on every selective query (which the paper observes at billions of
    triples) does not carry over; what does reproduce — and is asserted — is
    the figure's *motivating* observation: the direct transformation leaves
    TurboHOM far behind the optimized TurboHOM++ on the heavy queries, which
    is exactly what Table 7 then quantifies.
    """
    table = benchmark.pedantic(
        lambda: experiments.figure6_direct(scale=2, repeats=3), rounds=1, iterations=1
    )
    report(table)
    queries = table.column("query")
    assert len(table.rows) == 14
    assert all(isinstance(v, (int, float)) for v in table.column("TurboHOM"))
    # The long-running queries are the slowest ones for the direct engine.
    turbohom = dict(zip(queries, table.column("TurboHOM")))
    heavy = max(turbohom["Q2"], turbohom["Q6"], turbohom["Q9"], turbohom["Q14"])
    selective = max(turbohom[q] for q in SELECTIVE_QUERIES)
    assert heavy > selective, "the heavy queries should dominate TurboHOM's profile"


@pytest.mark.parametrize("query_id", ["Q1", "Q6", "Q9"])
def test_figure6_turbohom_query(benchmark, lubm_large, lubm_large_engines, query_id):
    """TurboHOM (direct transformation) per-query timings."""
    engine = lubm_large_engines["TurboHOM"]
    result = benchmark(engine.query, lubm_large.queries[query_id])
    assert len(result) >= 0
