"""Repeated-query serving (ours) — plan caching and LIMIT-bounded streaming.

Two properties of the compile-once / stream-everywhere engine are measured
on LUBM:

* **warm vs cold plan cache** — a repeated query skips the query
  transformation, start-vertex selection, query-tree construction and
  filter classification entirely (the plan cache hits), so its median
  latency must beat the cold median (cache cleared before every run);
* **LIMIT-bounded latency** — ``LIMIT k`` terminates matching after ``k``
  embeddings, so on a pattern with vastly more embeddings than ``k`` the
  bounded query must be measurably faster than the unbounded one.

Run with ``pytest benchmarks/bench_repeated_queries.py -q -s`` to see the
timing table; both properties are asserted, so this file doubles as a
regression gate in CI.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.datasets import load_lubm
from repro.engine.turbo_engine import TurboHomPPEngine
from repro.sparql.parser import parse_sparql

#: Medians over this many runs keep the comparisons robust to scheduler noise.
REPEATS = 15

_PREFIXES = """\
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
"""

#: A pattern with thousands of embeddings at scale 1 — the LIMIT-bounded
#: latency workload (every student takes courses).
_FANOUT_QUERY = _PREFIXES + "SELECT ?x ?y WHERE { ?x ub:takesCourse ?y . }"
_FANOUT_LIMIT = 10


@pytest.fixture(scope="module")
def serving_setup():
    """LUBM(1) loaded into a TurboHOM++ engine with a plan cache."""
    dataset = load_lubm(universities=1)
    engine = TurboHomPPEngine()
    engine.load(dataset.store)
    return dataset, engine


def _hit_ratio(counters: dict) -> float:
    """Hit ratio of a cache-counter dict with ``hits``/``misses`` keys."""
    return counters["hits"] / max(1, counters["hits"] + counters["misses"])


def _median_ms(run, repeats: int = REPEATS) -> float:
    times = []
    for _ in range(repeats):
        begin = time.perf_counter()
        run()
        times.append((time.perf_counter() - begin) * 1000.0)
    return statistics.median(times)


@pytest.mark.parametrize("query_id", ["Q1", "Q4", "Q7"])
def test_warm_plan_cache_beats_cold(serving_setup, query_id):
    """Warm (cached plan) execution must beat the cold (compile) median."""
    dataset, engine = serving_setup
    parsed = parse_sparql(dataset.queries[query_id]).strip_modifiers()

    def cold():
        engine.plan_cache.clear()
        engine.query(parsed)

    def warm():
        engine.query(parsed)

    warm()  # populate the cache before timing warm runs
    engine.plan_cache.clear()
    warm()
    warm_median = _median_ms(warm)
    # Counters are read before the cold phase (cold() clears them each run).
    stats = engine.stats()
    plan_rate = _hit_ratio(stats["plan_cache"])
    region_rate = _hit_ratio(stats["region_cache"])
    cold_median = _median_ms(cold)
    print(
        f"\nrepeated-query {query_id}: cold median {cold_median:.3f} ms, "
        f"warm median {warm_median:.3f} ms "
        f"(x{cold_median / max(warm_median, 1e-9):.2f}, "
        f"plan hits {plan_rate:.2f}, region hits {region_rate:.2f})"
    )
    assert warm_median < cold_median, (
        f"{query_id}: warm plan-cache median ({warm_median:.3f} ms) should beat "
        f"the cold median ({cold_median:.3f} ms)"
    )


def test_limit_bounded_latency(serving_setup):
    """LIMIT k on a high-fanout pattern must beat the unbounded run."""
    _, engine = serving_setup
    unbounded = parse_sparql(_FANOUT_QUERY)
    bounded = parse_sparql(_FANOUT_QUERY + f" LIMIT {_FANOUT_LIMIT}")

    total = len(engine.query(unbounded))
    assert total >= 10 * _FANOUT_LIMIT, "workload must dwarf the limit"

    unbounded_median = _median_ms(lambda: engine.query(unbounded))
    bounded_median = _median_ms(lambda: engine.query(bounded))
    print(
        f"\nLIMIT-bounded: {total} embeddings unbounded {unbounded_median:.3f} ms, "
        f"LIMIT {_FANOUT_LIMIT} {bounded_median:.3f} ms "
        f"(x{unbounded_median / max(bounded_median, 1e-9):.2f})"
    )
    assert bounded_median < unbounded_median, (
        f"LIMIT {_FANOUT_LIMIT} ({bounded_median:.3f} ms) should terminate matching "
        f"early and beat the unbounded run ({unbounded_median:.3f} ms)"
    )


def test_limit_bounded_work_is_bounded(serving_setup):
    """Beyond wall clock: the matcher must stop after LIMIT solutions."""
    _, engine = serving_setup
    bounded = parse_sparql(_FANOUT_QUERY + f" LIMIT {_FANOUT_LIMIT}")
    result = engine.query(bounded)
    assert len(result) == _FANOUT_LIMIT
    stats = engine.bgp_solver()._matcher.last_statistics
    assert stats.solutions <= _FANOUT_LIMIT
