"""Table 7 — effect of the type-aware transformation.

Compares TurboHOM (direct transformation) with TurboHOM++ without the four
optimizations, so the measured gain is attributable to the transformation
alone.  The paper reports gains between 1.01x and 27.22x, largest for the
queries that become point-shaped (Q6, Q14) or that get a better start vertex
(Q13).  The shape claims asserted here: the geometric-mean gain exceeds 1 and
the point-shaped queries benefit more than the already-selective ones.
"""

from __future__ import annotations

from conftest import LUBM_LARGE_SCALE, report

from repro.bench import experiments
from repro.utils.stats import geometric_mean


def test_table7_report(benchmark):
    """Regenerate Table 7 and assert the gain structure."""
    table = benchmark.pedantic(
        lambda: experiments.table7_type_aware(scale=LUBM_LARGE_SCALE, repeats=3),
        rounds=1,
        iterations=1,
    )
    report(table)
    gains = {row[0]: row[3] for row in table.rows}
    assert geometric_mean(list(gains.values())) > 1.0, (
        "the type-aware transformation should help on average"
    )
    # The queries the paper highlights as the biggest winners (they become
    # point-shaped after the transformation) should show a clear gain.
    assert gains["Q6"] > 1.5
    assert gains["Q14"] > 1.5


def test_table7_direct_q14(benchmark, lubm_large, lubm_large_engines):
    """TurboHOM (direct transformation) on Q14 — the cost Table 7 removes."""
    engine = lubm_large_engines["TurboHOM"]
    result = benchmark(engine.query, lubm_large.queries["Q14"])
    assert len(result) > 0


def test_table7_type_aware_q14(benchmark, lubm_large, lubm_large_engines):
    """TurboHOM++ on Q14 — point-shaped after the type-aware transformation."""
    engine = lubm_large_engines["TurboHOM++"]
    result = benchmark(engine.query, lubm_large.queries["Q14"])
    assert len(result) > 0
