"""Figure 15 — individual effect of the four optimizations on Q2 and Q9.

The paper measures, for the two most expensive LUBM queries, how much elapsed
time each optimization (+INT, -NLF, -DEG, +REUSE) removes when enabled alone
on top of the unoptimized TurboHOM++.  The claims asserted here are the
robust ones at laptop scale: the fully optimized configuration is faster than
the unoptimized one on both queries, and disabling the NLF filter (-NLF) —
the paper's biggest winner for Q9 — yields a positive saving.
"""

from __future__ import annotations

import pytest
from conftest import LUBM_LARGE_SCALE, report

from repro.bench import experiments
from repro.engine.turbo_engine import TurboEngine
from repro.matching.config import MatchConfig


def test_figure15_report(benchmark):
    """Regenerate Figure 15 (as a table) and assert the headline effects."""
    table = benchmark.pedantic(
        lambda: experiments.figure15_optimizations(scale=LUBM_LARGE_SCALE, repeats=3),
        rounds=1,
        iterations=1,
    )
    report(table)
    for row in table.rows:
        query_id, baseline, int_saves, nlf_saves, deg_saves, reuse_saves, optimized = row
        assert optimized < baseline, f"all optimizations together should speed up {query_id}"
    nlf_savings = {row[0]: row[3] for row in table.rows}
    assert nlf_savings["Q9"] > 0, "-NLF should save time on Q9 (the paper's largest effect)"


@pytest.mark.parametrize("optimization", ["INT", "NLF", "DEG", "REUSE"])
def test_figure15_single_optimization_q9(benchmark, lubm_large, optimization):
    """Q9 with exactly one optimization enabled (the Figure 15 bars)."""
    engine = TurboEngine(type_aware=True, config=MatchConfig().with_only(optimization))
    engine.load(lubm_large.store)
    result = benchmark(engine.query, lubm_large.queries["Q9"])
    assert len(result) > 0


def test_figure15_no_optimizations_q9(benchmark, lubm_large):
    """Q9 with no optimizations (the Figure 15 baseline)."""
    engine = TurboEngine(type_aware=True, config=MatchConfig.no_optimizations())
    engine.load(lubm_large.store)
    result = benchmark(engine.query, lubm_large.queries["Q9"])
    assert len(result) > 0
