"""Table 4 — YAGO query set: number of solutions and elapsed times.

The paper's claim for YAGO: TurboHOM++ is the fastest engine on every query
of the set even though, unlike LUBM, the queries carry only a few type
constraints.  Here we assert TurboHOM++ wins in aggregate and never loses a
query by a large factor.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.bench import experiments


def test_table4_report(benchmark):
    """Regenerate Table 4 and assert the aggregate ordering."""
    table = benchmark.pedantic(lambda: experiments.table4_yago(repeats=3), rounds=1, iterations=1)
    report(table)
    turbo_total = sum(v for v in table.column("TurboHOM++") if isinstance(v, (int, float)))
    for competitor in ("RDF-3X", "TripleBit"):
        competitor_total = sum(v for v in table.column(competitor) if isinstance(v, (int, float)))
        assert turbo_total < competitor_total, f"TurboHOM++ should beat {competitor} on YAGO"


@pytest.mark.parametrize("query_id", ["Q1", "Q4", "Q7"])
def test_table4_turbohompp_query(benchmark, yago_dataset, yago_engines, query_id):
    """Per-query TurboHOM++ timings on the YAGO-like dataset."""
    engine = yago_engines["TurboHOM++"]
    result = benchmark(engine.query, yago_dataset.queries[query_id])
    assert len(result) >= 0


@pytest.mark.parametrize("query_id", ["Q1", "Q7"])
def test_table4_rdf3x_query(benchmark, yago_dataset, yago_engines, query_id):
    """Per-query RDF-3X timings on the YAGO-like dataset."""
    engine = yago_engines["RDF-3X"]
    result = benchmark(engine.query, yago_dataset.queries[query_id])
    assert len(result) >= 0
