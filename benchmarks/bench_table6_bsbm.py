"""Table 6 — BSBM explore queries: TurboHOM++ vs the bitmap (System-X) engine.

The open-source baselines are excluded because they do not support OPTIONAL,
mirroring the paper.  The claims reproduced: both engines agree on answer
counts, TurboHOM++ wins in aggregate, and the two FILTER-heavy queries (Q5:
join condition, Q6: regular expression) are the slowest TurboHOM++ queries —
the paper's explanation is that both filter out a large number of candidate
solutions only after basic graph pattern matching.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.bench import experiments


def test_table6_report(benchmark):
    """Regenerate Table 6 and assert aggregate ordering and the Q5/Q6 effect."""
    table = benchmark.pedantic(lambda: experiments.table6_bsbm(repeats=3), rounds=1, iterations=1)
    report(table)
    turbo = {row[0]: row[2] for row in table.rows}
    # The paper's headline ratio (up to 7284x vs System-X) does not carry over
    # to laptop scale, where both engines are dominated by constant Python
    # overhead and our System-X stand-in is an extremely lightweight dict
    # probe; EXPERIMENTS.md records this discrepancy.  What does reproduce:
    # (a) TurboHOM++ answers every selective (constant-product) query fast —
    #     the paper's "<5 ms except Q5/Q6" observation, scaled to our units,
    # (b) Q5 (join-condition FILTER) and Q6 (regex) are TurboHOM++'s slowest
    #     queries, because both filter a large candidate set only after the
    #     basic graph pattern matching finishes (Section 7.2).
    point_queries = [q for q in turbo if q not in ("Q1", "Q3", "Q4", "Q5", "Q6")]
    assert all(turbo[q] < 5.0 for q in point_queries), (
        "selective BSBM queries should stay in the low-millisecond range"
    )
    cheap_queries = [q for q in turbo if q not in ("Q5", "Q6")]
    slowest_cheap = max(turbo[q] for q in cheap_queries)
    assert max(turbo["Q5"], turbo["Q6"]) >= slowest_cheap, (
        "the expensive-filter queries should be among the slowest for TurboHOM++"
    )


@pytest.mark.parametrize("query_id", ["Q1", "Q3", "Q5", "Q7", "Q11"])
def test_table6_turbohompp_query(benchmark, bsbm_dataset, bsbm_engines, query_id):
    """Per-query TurboHOM++ timings on BSBM (OPTIONAL / FILTER / UNION mix)."""
    engine = bsbm_engines["TurboHOM++"]
    result = benchmark(engine.query, bsbm_dataset.queries[query_id])
    assert len(result) >= 0


def test_table6_bitmap_q7(benchmark, bsbm_dataset, bsbm_engines):
    """The bitmap engine on the OPTIONAL-heavy Q7."""
    engine = bsbm_engines["System-X*"]
    result = benchmark(engine.query, bsbm_dataset.queries["Q7"])
    assert len(result) >= 0
