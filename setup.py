"""Setup shim.

The project metadata lives in pyproject.toml / setup.cfg; this file exists so
that the package can be installed in editable mode on environments without
the ``wheel`` package (offline build environments fall back to the legacy
``setup.py develop`` code path).
"""

from setuptools import setup

setup()
